#ifndef UDM_KDE_SIMD_SWEEP_H_
#define UDM_KDE_SIMD_SWEEP_H_

/// Runtime-dispatched SIMD kernels for the density hot path (DESIGN.md
/// §4k): explicit AVX2/AVX-512 variants of the column-major log-kernel
/// sweeps and a vectorized exp-and-sum pass with the pruning-gap mask
/// folded into the vector compare. The dispatch table is a plain struct
/// of function pointers resolved once (per process from CPUID/UDM_SIMD,
/// or per model from DensityEvalOptions::simd); all variants are compiled
/// into every binary with GCC target attributes, so no -march flag is
/// ever required for correctness — `relwithdebinfo-native` stays a pure
/// optimization preset.
///
/// Determinism contract:
///  - The sweeps are bit-identical across every dispatch level: scalar
///    and vector paths issue the same per-element rounding sequence
///    (sub, mul, add, fma — see SweepLogKernel in kernel_table.h).
///  - The exp-and-sum pass is bit-identical across index modes, thread
///    widths, and range splits *at a given level* (the vector exp is
///    elementwise and the accumulation is a strict left-to-right fold in
///    term order), and within 1e-12 relative of the scalar std::exp path
///    across levels (polynomial exp, ≤2 ulp per term). Pruned-term
///    counts are exactly identical at every level: the gap test compares
///    the exact pass-1 term values, never the approximated exps.

#include <cstddef>
#include <cstdint>

#include "common/math_util.h"
#include "common/simd.h"

namespace udm::kde_internal {

/// Resumable state for a pruned exp-and-sum: one instance accumulates
/// across any partition of the term array into subranges (the spatial
/// index feeds per-cell runs, the dense path one full-array run) and
/// yields identical bits either way at a given dispatch level.
///
/// Two in-order accumulation flavors share the state, one per dispatch
/// family. The scalar reference path uses the compensated (Kahan) update
/// — exactly the KahanSum the pre-SIMD pruned sums ran. The vector paths
/// use the plain running sum: compensation costs 4 dependent FP ops per
/// term, a serial chain that would cap the drain below the vector exp's
/// throughput, while the plain fold of N positive exp terms carries at
/// most N·eps ≈ 4e-13 relative error at N = 4096 — comfortably inside
/// the 1e-12 cross-level contract. Both flavors are strict left-to-right
/// folds, so either is bit-stable under any range split; a state is only
/// ever fed through one dispatch level, never a mix.
struct ExpSumState {
  double sum = 0.0;
  double compensation = 0.0;
  uint64_t pruned = 0;

  /// Kahan update (the scalar reference path).
  void AddCompensated(double x) {
    const double y = x - compensation;
    const double t = sum + y;
    compensation = (t - sum) - y;
    sum = t;
  }

  /// Plain in-order update (the vector paths). Adding an exact +0.0 for a
  /// pruned lane is a bitwise no-op on the non-negative running sum, so
  /// the vector drains can zero pruned lanes instead of branching.
  void AddPlain(double x) { sum += x; }

  double Total() const { return sum; }
};

/// SweepLogKernel with per-element tables (see kernel_table.h).
using SweepKernelFn = void (*)(double x_d, const double* col,
                               const double* neg_inv_two_var,
                               const double* log_norm, double* acc, size_t n);

/// SweepLogKernelUniform: one (neg_inv_two_var, log_norm) pair per column.
using SweepUniformFn = void (*)(double x_d, const double* col,
                                double neg_inv_two_var, double log_norm,
                                double* acc, size_t n);

/// Pruned exp-and-sum over `terms[0, n)`: for every term with
/// max_term − term ≤ gap, adds exp(term − shift) to state.sum (strictly
/// in term order); every other term increments state.pruned. `shift` is
/// max_term for the log-space path and 0.0 for the linear path,
/// reproducing PrunedLogSumExp / PrunedLinearSum exactly at the scalar
/// level.
using PrunedExpAccumFn = void (*)(const double* terms, size_t n,
                                  double max_term, double shift, double gap,
                                  ExpSumState& state);

/// One resolved dispatch level: the three hot-path entry points plus the
/// level they implement (reported through EvalStats/serve/bench).
struct SimdDispatch {
  SimdLevel level = SimdLevel::kScalar;
  SweepKernelFn sweep = nullptr;
  SweepUniformFn sweep_uniform = nullptr;
  PrunedExpAccumFn pruned_exp_accum = nullptr;
};

/// The dispatch table for `level`. Levels the host cannot execute must
/// not be requested here — resolve through ResolveSimdRequest first.
const SimdDispatch& GetSimdDispatch(SimdLevel level);

/// The process-default dispatch (ProcessSimdLevel(): UDM_SIMD else CPUID).
const SimdDispatch& ProcessSimdDispatch();

/// The elementwise polynomial exp used by the vector paths, evaluated for
/// one scalar input through the identical rounding sequence as a vector
/// lane — the sweeps' remainder handling uses it so a term's exp does not
/// depend on whether it landed in a full vector or the tail. Exposed for
/// tests. Accuracy ≤2 ulp on [−708, 710]; inputs below −708 flush to +0
/// (std::exp returns a subnormal ≤ 3.3e-308 there — see DESIGN.md §4k for
/// why this is invisible under the 1e-12 contract).
double SimdPolyExp(double x);

}  // namespace udm::kde_internal

#endif  // UDM_KDE_SIMD_SWEEP_H_
