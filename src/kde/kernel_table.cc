#include "kde/kernel_table.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace udm::kde_internal {

ErrorKernelTable ErrorKernelTable::Build(std::span<const double> row_values,
                                         std::span<const double> row_psi,
                                         size_t num_points, size_t num_dims,
                                         std::span<const double> bandwidths,
                                         KernelNormalization normalization) {
  ErrorKernelTable table;
  table.num_points = num_points;
  table.num_dims = num_dims;
  table.values.resize(num_points * num_dims);
  table.neg_inv_two_var.resize(num_points * num_dims);
  table.log_norm.resize(num_points * num_dims);
  UDM_DCHECK(num_points == 0 || num_dims == 0 ||
             (IsSimdAligned(table.values.data()) &&
              IsSimdAligned(table.neg_inv_two_var.data()) &&
              IsSimdAligned(table.log_norm.data())));
  for (size_t j = 0; j < num_dims; ++j) {
    const double h = bandwidths[j];
    double* values_col = table.values.data() + j * num_points;
    double* var_col = table.neg_inv_two_var.data() + j * num_points;
    double* norm_col = table.log_norm.data() + j * num_points;
    for (size_t i = 0; i < num_points; ++i) {
      const double psi = row_psi[i * num_dims + j];
      values_col[i] = row_values[i * num_dims + j];
      var_col[i] = ErrorKernelNegInvTwoVar(h, psi);
      norm_col[i] = ErrorKernelLogNorm(h, psi, normalization);
    }
  }
  return table;
}

void ErrorKernelTable::Permute(std::span<const size_t> perm) {
  std::vector<double> scratch(num_points);
  const auto gather = [&](AlignedVector<double>& column_major) {
    for (size_t j = 0; j < num_dims; ++j) {
      double* col = column_major.data() + j * num_points;
      for (size_t i = 0; i < num_points; ++i) scratch[i] = col[perm[i]];
      std::copy(scratch.begin(), scratch.end(), col);
    }
  };
  gather(values);
  gather(neg_inv_two_var);
  gather(log_norm);
}

}  // namespace udm::kde_internal
