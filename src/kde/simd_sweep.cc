#include "kde/simd_sweep.h"

#include <bit>
#include <cmath>
#include <cstdint>

#include "kde/kernel_table.h"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define UDM_SIMD_X86 1
#include <immintrin.h>
#if defined(__GNUC__) && !defined(__clang__)
// GCC's _mm512_undefined_pd()/_mm512_undefined_epi32() are implemented as
// deliberately-uninitialized self-initialized locals, which trips
// -Wmaybe-uninitialized (GCC PR 105593) when the min/slli intrinsics
// inline into our target("avx512f,...") functions. Nothing here reads
// truly uninitialized data.
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
#endif
#else
#define UDM_SIMD_X86 0
#endif

namespace udm::kde_internal {
namespace {

// ---------------------------------------------------------------------------
// Shared exp constants. The polynomial exp is the same elementwise
// algorithm at every width — scalar (SimdPolyExp), 4 lanes (AVX2), 8
// lanes (AVX-512) — built from sub/mul/add/fma/min and a round-to-
// nearest-even via the 1.5·2^52 magic-number trick, all of which round
// per element. A term's exp therefore never depends on which lane (or
// the tail) it landed in, which is what makes the exp-and-sum pass
// bit-stable across index modes and range splits at a given level.
//
// Algorithm: k = round(x·log2e); Cody–Waite reduction r = x − k·ln2_hi −
// k·ln2_lo (ln2_hi carries 20 trailing zero bits, so k·ln2_hi is exact
// for |k| ≤ 2^20); e^r ≈ 1 + r + r²·P(r) with P the Taylor tail 1/2! +
// r/3! + … + r^11/13! (truncation < 5e-18 on |r| ≤ ln2/2); scale by 2^k
// through exponent-field construction. Total error ≤ 2 ulp per term.
//
// Range handling: inputs are clamped above at 710 (exp overflows to +inf
// exactly as std::exp does by 709.79) and flushed to +0 below −708 —
// std::exp still returns a subnormal down to −745, so the poly path
// differs there by at most 3.3e-308 absolute per term, invisible under
// the 1e-12 relative contract for any sum whose leading kept term is
// ≥ e^−671 (log-space sums always lead with exp(0) = 1).
inline constexpr double kExpLog2e = 0x1.71547652b82fep+0;   // log2(e)
inline constexpr double kExpLn2Hi = 0x1.62e42fee00000p-1;   // 20 low zeros
inline constexpr double kExpLn2Lo = 0x1.a39ef35793c76p-33;  // ln2 − ln2_hi
inline constexpr double kExpRoundMagic = 0x1.8p+52;         // 1.5·2^52
inline constexpr double kExpScaleBias = 4503599627371519.0;  // 2^52 + 1023
inline constexpr double kExpClampHi = 710.0;
inline constexpr double kExpZeroBelow = -708.0;
// Taylor tail coefficients 1/k! for k = 2..13, highest degree first.
// Spelled as divisions so the scalar and vector paths share the exact
// same correctly-rounded doubles.
inline constexpr double kExpC13 = 1.0 / 6227020800.0;
inline constexpr double kExpC12 = 1.0 / 479001600.0;
inline constexpr double kExpC11 = 1.0 / 39916800.0;
inline constexpr double kExpC10 = 1.0 / 3628800.0;
inline constexpr double kExpC9 = 1.0 / 362880.0;
inline constexpr double kExpC8 = 1.0 / 40320.0;
inline constexpr double kExpC7 = 1.0 / 5040.0;
inline constexpr double kExpC6 = 1.0 / 720.0;
inline constexpr double kExpC5 = 1.0 / 120.0;
inline constexpr double kExpC4 = 1.0 / 24.0;
inline constexpr double kExpC3 = 1.0 / 6.0;
inline constexpr double kExpC2 = 1.0 / 2.0;

// ---------------------------------------------------------------------------
// Scalar level: the reference. The sweeps are the kernel_table.h
// inlines; the exp-and-sum is the PrunedLogSumExp/PrunedLinearSum loop
// body with the shift generalized (max_term for log space, 0.0 for
// linear — note t − 0.0 ≡ t bitwise, including −0.0).

void SweepScalar(double x_d, const double* col, const double* neg_inv_two_var,
                 const double* log_norm, double* acc, size_t n) {
  SweepLogKernel(x_d, col, neg_inv_two_var, log_norm, acc, n);
}

void SweepUniformScalar(double x_d, const double* col, double neg_inv_two_var,
                        double log_norm, double* acc, size_t n) {
  SweepLogKernelUniform(x_d, col, neg_inv_two_var, log_norm, acc, n);
}

void ExpAccumScalar(const double* terms, size_t n, double max_term,
                    double shift, double gap, ExpSumState& state) {
  for (size_t i = 0; i < n; ++i) {
    if (max_term - terms[i] > gap) {
      ++state.pruned;
      continue;
    }
    state.AddCompensated(std::exp(terms[i] - shift));
  }
}

}  // namespace

// Scalar lane of the vector exp; noinline keeps it compiled in the
// baseline ISA context even when called from the AVX2/AVX-512 tail
// loops, so no FMA contraction can sneak into the add/sub sequence and
// diverge it from what baseline-compiled callers (tests) compute.
__attribute__((noinline)) double SimdPolyExp(double x) {
  if (x < kExpZeroBelow) return 0.0;  // matches the vector flush mask
  const double xc = std::isnan(x) ? x : (x < kExpClampHi ? x : kExpClampHi);
  const double m = xc * kExpLog2e;
  const double k = (m + kExpRoundMagic) - kExpRoundMagic;  // nearest-even
  const double r1 = std::fma(k, -kExpLn2Hi, xc);
  const double r = std::fma(k, -kExpLn2Lo, r1);
  double q = kExpC13;
  q = std::fma(q, r, kExpC12);
  q = std::fma(q, r, kExpC11);
  q = std::fma(q, r, kExpC10);
  q = std::fma(q, r, kExpC9);
  q = std::fma(q, r, kExpC8);
  q = std::fma(q, r, kExpC7);
  q = std::fma(q, r, kExpC6);
  q = std::fma(q, r, kExpC5);
  q = std::fma(q, r, kExpC4);
  q = std::fma(q, r, kExpC3);
  q = std::fma(q, r, kExpC2);
  const double r2 = r * r;
  const double v = std::fma(q, r2, r);
  const double p = 1.0 + v;
  const double u = k + kExpScaleBias;  // exact: k + 1023 ∈ [2, 2047]
  const double scale =
      std::bit_cast<double>(std::bit_cast<uint64_t>(u) << 52);
  return p * scale;
}

#if UDM_SIMD_X86

namespace {

// ---------------------------------------------------------------------------
// AVX2 + FMA level: 4 double lanes. Scalar tails reuse std::fma (the
// compiler emits the same vfmadd the lanes use) and SimdPolyExp.

__attribute__((target("avx2,fma"))) inline __m256d ExpPd256(__m256d x) {
  const __m256d zero_mask =
      _mm256_cmp_pd(x, _mm256_set1_pd(kExpZeroBelow), _CMP_LT_OQ);
  // min(hi, x) propagates NaN from x (the second operand wins on NaN).
  const __m256d xc = _mm256_min_pd(_mm256_set1_pd(kExpClampHi), x);
  const __m256d magic = _mm256_set1_pd(kExpRoundMagic);
  const __m256d m = _mm256_mul_pd(xc, _mm256_set1_pd(kExpLog2e));
  const __m256d k = _mm256_sub_pd(_mm256_add_pd(m, magic), magic);
  const __m256d r1 = _mm256_fnmadd_pd(k, _mm256_set1_pd(kExpLn2Hi), xc);
  const __m256d r = _mm256_fnmadd_pd(k, _mm256_set1_pd(kExpLn2Lo), r1);
  __m256d q = _mm256_set1_pd(kExpC13);
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC12));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC11));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC10));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC9));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC8));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC7));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC6));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC5));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC4));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC3));
  q = _mm256_fmadd_pd(q, r, _mm256_set1_pd(kExpC2));
  const __m256d r2 = _mm256_mul_pd(r, r);
  const __m256d v = _mm256_fmadd_pd(q, r2, r);
  const __m256d p = _mm256_add_pd(v, _mm256_set1_pd(1.0));
  const __m256d u = _mm256_add_pd(k, _mm256_set1_pd(kExpScaleBias));
  const __m256d scale = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_castpd_si256(u), 52));
  return _mm256_andnot_pd(zero_mask, _mm256_mul_pd(p, scale));
}

__attribute__((target("avx2,fma"))) void SweepAvx2(double x_d,
                                                   const double* col,
                                                   const double* neg_inv_two_var,
                                                   const double* log_norm,
                                                   double* acc, size_t n) {
  const __m256d vx = _mm256_set1_pd(x_d);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(vx, _mm256_loadu_pd(col + i));
    const __m256d base =
        _mm256_add_pd(_mm256_loadu_pd(acc + i), _mm256_loadu_pd(log_norm + i));
    const __m256d res = _mm256_fmadd_pd(
        _mm256_mul_pd(d, d), _mm256_loadu_pd(neg_inv_two_var + i), base);
    _mm256_storeu_pd(acc + i, res);
  }
  for (; i < n; ++i) {  // identical per-element fma sequence
    const double delta = x_d - col[i];
    acc[i] =
        std::fma(delta * delta, neg_inv_two_var[i], acc[i] + log_norm[i]);
  }
}

__attribute__((target("avx2,fma"))) void SweepUniformAvx2(
    double x_d, const double* col, double neg_inv_two_var, double log_norm,
    double* acc, size_t n) {
  const __m256d vx = _mm256_set1_pd(x_d);
  const __m256d vniv = _mm256_set1_pd(neg_inv_two_var);
  const __m256d vln = _mm256_set1_pd(log_norm);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d d = _mm256_sub_pd(vx, _mm256_loadu_pd(col + i));
    const __m256d base = _mm256_add_pd(_mm256_loadu_pd(acc + i), vln);
    const __m256d res = _mm256_fmadd_pd(_mm256_mul_pd(d, d), vniv, base);
    _mm256_storeu_pd(acc + i, res);
  }
  for (; i < n; ++i) {
    const double delta = x_d - col[i];
    acc[i] = std::fma(delta * delta, neg_inv_two_var, acc[i] + log_norm);
  }
}

__attribute__((target("avx2,fma"))) void ExpAccumAvx2(const double* terms,
                                                      size_t n,
                                                      double max_term,
                                                      double shift, double gap,
                                                      ExpSumState& state) {
  const __m256d vmax = _mm256_set1_pd(max_term);
  const __m256d vshift = _mm256_set1_pd(shift);
  const __m256d vgap = _mm256_set1_pd(gap);
  alignas(32) double exps[4];
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vterm = _mm256_loadu_pd(terms + i);
    // Prune where max − term > gap; NaN terms compare false and are kept,
    // matching the scalar test exactly.
    const __m256d prune =
        _mm256_cmp_pd(_mm256_sub_pd(vmax, vterm), vgap, _CMP_GT_OQ);
    // Zero the pruned lanes and drain in term order without branching:
    // a +0.0 add is a bitwise no-op on the non-negative running sum, so
    // the fold stays identical to skipping — the bit-stability anchor
    // across index modes and range splits.
    _mm256_store_pd(
        exps, _mm256_andnot_pd(prune, ExpPd256(_mm256_sub_pd(vterm, vshift))));
    state.pruned +=
        static_cast<uint64_t>(__builtin_popcount(_mm256_movemask_pd(prune)));
    state.AddPlain(exps[0]);
    state.AddPlain(exps[1]);
    state.AddPlain(exps[2]);
    state.AddPlain(exps[3]);
  }
  for (; i < n; ++i) {
    if (max_term - terms[i] > gap) {
      ++state.pruned;
      continue;
    }
    state.AddPlain(SimdPolyExp(terms[i] - shift));
  }
}

// ---------------------------------------------------------------------------
// AVX-512 level: 8 double lanes, masked tail for the sweeps (the masked
// lanes issue the same sub/mul/add/fma sequence per element, so the tail
// stays bit-identical to the scalar reference).

__attribute__((target("avx512f,avx512dq"))) inline __m512d ExpPd512(
    __m512d x) {
  const __mmask8 zero_mask =
      _mm512_cmp_pd_mask(x, _mm512_set1_pd(kExpZeroBelow), _CMP_LT_OQ);
  const __m512d xc = _mm512_min_pd(_mm512_set1_pd(kExpClampHi), x);
  const __m512d magic = _mm512_set1_pd(kExpRoundMagic);
  const __m512d m = _mm512_mul_pd(xc, _mm512_set1_pd(kExpLog2e));
  const __m512d k = _mm512_sub_pd(_mm512_add_pd(m, magic), magic);
  const __m512d r1 = _mm512_fnmadd_pd(k, _mm512_set1_pd(kExpLn2Hi), xc);
  const __m512d r = _mm512_fnmadd_pd(k, _mm512_set1_pd(kExpLn2Lo), r1);
  __m512d q = _mm512_set1_pd(kExpC13);
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC12));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC11));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC10));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC9));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC8));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC7));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC6));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC5));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC4));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC3));
  q = _mm512_fmadd_pd(q, r, _mm512_set1_pd(kExpC2));
  const __m512d r2 = _mm512_mul_pd(r, r);
  const __m512d v = _mm512_fmadd_pd(q, r2, r);
  const __m512d p = _mm512_add_pd(v, _mm512_set1_pd(1.0));
  const __m512d u = _mm512_add_pd(k, _mm512_set1_pd(kExpScaleBias));
  const __m512d scale = _mm512_castsi512_pd(
      _mm512_slli_epi64(_mm512_castpd_si512(u), 52));
  return _mm512_maskz_mov_pd(~zero_mask, _mm512_mul_pd(p, scale));
}

__attribute__((target("avx512f,avx512dq"))) void SweepAvx512(
    double x_d, const double* col, const double* neg_inv_two_var,
    const double* log_norm, double* acc, size_t n) {
  const __m512d vx = _mm512_set1_pd(x_d);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d = _mm512_sub_pd(vx, _mm512_loadu_pd(col + i));
    const __m512d base =
        _mm512_add_pd(_mm512_loadu_pd(acc + i), _mm512_loadu_pd(log_norm + i));
    const __m512d res = _mm512_fmadd_pd(
        _mm512_mul_pd(d, d), _mm512_loadu_pd(neg_inv_two_var + i), base);
    _mm512_storeu_pd(acc + i, res);
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d d =
        _mm512_sub_pd(vx, _mm512_maskz_loadu_pd(tail, col + i));
    const __m512d base = _mm512_add_pd(_mm512_maskz_loadu_pd(tail, acc + i),
                                       _mm512_maskz_loadu_pd(tail, log_norm + i));
    const __m512d res = _mm512_fmadd_pd(
        _mm512_mul_pd(d, d), _mm512_maskz_loadu_pd(tail, neg_inv_two_var + i),
        base);
    _mm512_mask_storeu_pd(acc + i, tail, res);
  }
}

__attribute__((target("avx512f,avx512dq"))) void SweepUniformAvx512(
    double x_d, const double* col, double neg_inv_two_var, double log_norm,
    double* acc, size_t n) {
  const __m512d vx = _mm512_set1_pd(x_d);
  const __m512d vniv = _mm512_set1_pd(neg_inv_two_var);
  const __m512d vln = _mm512_set1_pd(log_norm);
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d d = _mm512_sub_pd(vx, _mm512_loadu_pd(col + i));
    const __m512d base = _mm512_add_pd(_mm512_loadu_pd(acc + i), vln);
    const __m512d res = _mm512_fmadd_pd(_mm512_mul_pd(d, d), vniv, base);
    _mm512_storeu_pd(acc + i, res);
  }
  if (i < n) {
    const __mmask8 tail = static_cast<__mmask8>((1u << (n - i)) - 1u);
    const __m512d d =
        _mm512_sub_pd(vx, _mm512_maskz_loadu_pd(tail, col + i));
    const __m512d base =
        _mm512_add_pd(_mm512_maskz_loadu_pd(tail, acc + i), vln);
    const __m512d res = _mm512_fmadd_pd(_mm512_mul_pd(d, d), vniv, base);
    _mm512_mask_storeu_pd(acc + i, tail, res);
  }
}

__attribute__((target("avx512f,avx512dq"))) void ExpAccumAvx512(
    const double* terms, size_t n, double max_term, double shift, double gap,
    ExpSumState& state) {
  const __m512d vmax = _mm512_set1_pd(max_term);
  const __m512d vshift = _mm512_set1_pd(shift);
  const __m512d vgap = _mm512_set1_pd(gap);
  alignas(64) double exps[8];
  size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m512d vterm = _mm512_loadu_pd(terms + i);
    const __mmask8 prune =
        _mm512_cmp_pd_mask(_mm512_sub_pd(vmax, vterm), vgap, _CMP_GT_OQ);
    // Branchless drain: pruned lanes are zeroed, and a +0.0 add is a
    // bitwise no-op on the non-negative running sum (see ExpAccumAvx2).
    _mm512_store_pd(exps, _mm512_maskz_mov_pd(
                              static_cast<__mmask8>(~prune),
                              ExpPd512(_mm512_sub_pd(vterm, vshift))));
    state.pruned += static_cast<uint64_t>(
        __builtin_popcount(static_cast<unsigned>(prune)));
    state.AddPlain(exps[0]);
    state.AddPlain(exps[1]);
    state.AddPlain(exps[2]);
    state.AddPlain(exps[3]);
    state.AddPlain(exps[4]);
    state.AddPlain(exps[5]);
    state.AddPlain(exps[6]);
    state.AddPlain(exps[7]);
  }
  for (; i < n; ++i) {
    if (max_term - terms[i] > gap) {
      ++state.pruned;
      continue;
    }
    state.AddPlain(SimdPolyExp(terms[i] - shift));
  }
}

}  // namespace

#endif  // UDM_SIMD_X86

const SimdDispatch& GetSimdDispatch(SimdLevel level) {
  static const SimdDispatch kScalarTable{SimdLevel::kScalar, &SweepScalar,
                                         &SweepUniformScalar, &ExpAccumScalar};
#if UDM_SIMD_X86
  static const SimdDispatch kAvx2Table{SimdLevel::kAvx2, &SweepAvx2,
                                       &SweepUniformAvx2, &ExpAccumAvx2};
  static const SimdDispatch kAvx512Table{SimdLevel::kAvx512, &SweepAvx512,
                                         &SweepUniformAvx512, &ExpAccumAvx512};
  switch (level) {
    case SimdLevel::kAvx512:
      return kAvx512Table;
    case SimdLevel::kAvx2:
      return kAvx2Table;
    case SimdLevel::kScalar:
      return kScalarTable;
  }
#endif
  (void)level;
  return kScalarTable;
}

const SimdDispatch& ProcessSimdDispatch() {
  static const SimdDispatch& dispatch = GetSimdDispatch(ProcessSimdLevel());
  return dispatch;
}

}  // namespace udm::kde_internal
