#ifndef UDM_KDE_SPATIAL_INDEX_H_
#define UDM_KDE_SPATIAL_INDEX_H_

/// Cell-pruned spatial index for sub-linear density evaluation
/// (DESIGN.md §4j). A regular grid over the training summands, keyed on
/// the few best-spread dimensions, with per-(cell, dim) AABBs and bounds
/// on the log-kernel coefficients. At query time each cell's best-case
/// contribution is bounded from the query's distance to the cell AABB;
/// cells that provably cannot survive the existing per-term prune are
/// skipped wholesale, and surviving cells fall through to the same
/// column-major sweeps as the non-indexed path — over the same
/// (cell-contiguously re-packed) tables, so results are bit-identical
/// under every IndexMode.
///
/// Internal to the density estimators; callers steer it per request via
/// EvalRequest::index and per model via DensityEvalOptions::index.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/math_util.h"
#include "common/result.h"
#include "common/scratch.h"
#include "kde/batch_eval.h"
#include "kde/eval.h"
#include "kde/eval_obs.h"
#include "kde/simd_sweep.h"

namespace udm::kde_internal {

/// Safety margin (in nats) added on top of the pruning gap before a cell
/// is skipped. The per-cell bound and the per-term log-kernel values are
/// computed with different floating-point operation orders, so "bound ≥
/// every member term" holds exactly only in real arithmetic; the slack
/// absorbs the rounding difference (≲ d·ε·|term| ≈ 1e-13 for any term
/// near the running max, the only terms a skip decision can affect).
/// Pruning strictly less than the ideal bound costs nothing but a few
/// extra visited cells.
inline constexpr double kCellBoundSlack = 1e-6;

/// Per-query work accounting filled by the indexed evaluation drivers.
struct IndexedEvalCounters {
  uint64_t cells_visited = 0;
  uint64_t cells_pruned = 0;
  uint64_t pruned_terms = 0;
};

/// The index proper: grid key dims, occupied-cell ranges over the
/// re-packed summand order, and per-(cell, dim) bound tables.
class SpatialIndex {
 public:
  /// Builds the grid over `columns` (column-major num_points × num_dims
  /// summand values). `neg_inv_two_var`/`log_norm` are the per-entry
  /// log-kernel coefficient tables, either per (summand, dim)
  /// (size num_points·num_dims, column-major — the error-kernel case) or
  /// per dim (size num_dims — the uniform ψ=0 plain-KDE case).
  /// `log_seed`, when non-empty (size num_points), is each summand's
  /// additive log-space seed (log micro-cluster weight); per-cell maxima
  /// of it fold into the bounds. `bandwidths` size the cells.
  ///
  /// The build chooses a deterministic cell-contiguous re-packing of the
  /// summands, exposed as permutation(); the caller must gather every
  /// per-summand array it evaluates with through that permutation so the
  /// indexed and non-indexed paths iterate identical memory.
  static SpatialIndex Build(std::span<const double> columns,
                            size_t num_points, size_t num_dims,
                            std::span<const double> neg_inv_two_var,
                            std::span<const double> log_norm,
                            std::span<const double> bandwidths,
                            std::span<const double> log_seed,
                            const DensityIndexOptions& options);

  size_t num_points() const { return perm_.size(); }
  size_t num_dims() const { return num_dims_; }
  size_t num_cells() const { return cell_begin_.empty() ? 0 : cell_begin_.size() - 1; }

  /// perm[new_position] = original index. Cell c owns re-packed positions
  /// [cell_begin(c), cell_end(c)).
  std::span<const size_t> permutation() const { return perm_; }
  size_t cell_begin(size_t c) const { return cell_begin_[c]; }
  size_t cell_end(size_t c) const { return cell_begin_[c + 1]; }

  /// Fills bounds[c] with an upper bound on any member summand's log
  /// contribution over `dims`:
  ///
  ///   bounds[c] = max_seed[c] + Σ_{j∈dims} dmin_j(x)²·a_max[c,j] + b_max[c,j]
  ///
  /// where dmin_j is the distance from x_j to the cell's [lo, hi] along j
  /// (0 inside) and a_max/b_max are the per-cell maxima of the log-kernel
  /// coefficients (a_max is the max-variance bound: a = −1/(2(h²+ψ²)) < 0,
  /// so the widest member kernel decays slowest and dominates). NaN query
  /// coordinates yield NaN bounds, which never satisfy a skip test, so
  /// NaN queries degrade to visiting every cell — exactly the baseline.
  void ComputeCellBounds(std::span<const double> x,
                         std::span<const size_t> dims,
                         std::span<double> bounds) const;

 private:
  size_t num_dims_ = 0;
  std::vector<size_t> perm_;        // new position -> original index
  std::vector<size_t> cell_begin_;  // size num_cells()+1, re-packed offsets
  // Per-(cell, dim) tables, column-major: entry (c, j) at [j*C + c].
  std::vector<double> lo_;
  std::vector<double> hi_;
  std::vector<double> a_max_;  // max −1/(2·var) over the cell
  std::vector<double> b_max_;  // max −log(√2π·s) over the cell
  std::vector<double> max_seed_;  // per-cell max log_seed (zeros if none)
};

/// Gathers per-summand arrays into a permutation's order (out[i] =
/// in[perm[i]]): one column-major matrix, one row-major matrix, and one
/// flat vector variant, for re-packing model storage after Build.
std::vector<double> GatherColumns(std::span<const double> columns,
                                  size_t num_points, size_t num_dims,
                                  std::span<const size_t> perm);
std::vector<double> GatherRows(std::span<const double> rows,
                               size_t num_points, size_t num_dims,
                               std::span<const size_t> perm);
std::vector<double> Gather(std::span<const double> values,
                           std::span<const size_t> perm);

/// Resolves a request's IndexMode against the model's (optional) index:
/// nullptr = run the non-indexed path. kForce against an index-less model
/// is the caller asking for a guarantee the model cannot give — fail loud
/// rather than silently going linear.
inline Result<const SpatialIndex*> ResolveIndexMode(
    const std::optional<SpatialIndex>& index, IndexMode mode,
    const char* model_name) {
  if (mode == IndexMode::kOff) return static_cast<const SpatialIndex*>(nullptr);
  if (index.has_value()) return &*index;
  if (mode == IndexMode::kForce) {
    return Status::FailedPrecondition(
        std::string(model_name) +
        ": IndexMode::kForce, but the model built no spatial index "
        "(too few points, non-Gaussian kernel, or disabled at fit time)");
  }
  return static_cast<const SpatialIndex*>(nullptr);
}

/// Whether a model with `num_points` summands should build an index.
inline bool ShouldBuildIndex(const DensityIndexOptions& options,
                             size_t num_points) {
  return options.enabled && num_points >= options.min_points;
}

/// Batches below this many queries skip the adaptive-bypass probe: with
/// at most ~one tile of queries, the dense path's panel reuse has little
/// to amortize and the probe would be a measurable fraction of the batch.
inline constexpr size_t kIndexBypassMinQueries = 2 * kMaxQueryTile;

/// Minimum fraction of cells the probe query must prune for a kAuto batch
/// to stay on the index. Break-even sits near the measured tile-reuse
/// advantage of the dense path (~3x on cache-resident models): an index
/// skipping less than half its cells cannot make that back, while at 50%+
/// the indexed path is at worst about even and scales past the dense path
/// as pruning deepens.
inline constexpr double kIndexBypassMinCellPruneRate = 0.5;

/// Adaptive kAuto bypass for batch evaluation (DESIGN.md §4k). Query-tile
/// blocking lets the dense path sweep each cache-resident table panel for
/// a whole tile of queries, an economy the per-query indexed path cannot
/// share — so when the data gives the index nothing to prune, kAuto would
/// silently pay the full tile factor for its bit-identical answer. Large
/// kAuto batches therefore probe their first query through the index (a
/// throwaway evaluation against an unbounded context) and drop to the
/// dense tiled path when fewer than kIndexBypassMinCellPruneRate of the
/// cells pruned. Both paths return identical bits and identical
/// pruned-term counts by construction, so the switch is observable only
/// in EvalStats' cell counters (zero when the batch bypassed) and in how
/// fast the answer arrives. kForce never bypasses — it is the caller's
/// explicit demand for the indexed path.
///
/// `probe(x, dims, counters)` must run one indexed evaluation of query
/// `x` over `dims`, filling `counters` with its cell accounting. The
/// decision depends only on the model and the batch's first query, never
/// on thread count or timing, so results stay deterministic at any width.
template <typename ProbeFn>
const SpatialIndex* ResolveBatchIndex(const SpatialIndex* index,
                                      const EvalRequest& request,
                                      size_t num_dims, size_t dense_tile,
                                      std::span<const size_t> all_dims,
                                      ProbeFn&& probe) {
  if (index == nullptr || request.index != IndexMode::kAuto) return index;
  if (dense_tile <= 1) return index;  // dense has no tiling edge to win
  if (num_dims == 0 || request.points.size() < num_dims) return index;
  if (request.points.size() / num_dims < kIndexBypassMinQueries) return index;
  const std::span<const size_t> dims =
      request.subspace.empty() ? all_dims : request.subspace;
  for (const size_t dim : dims) {
    if (dim >= num_dims) return index;  // let the batch driver fail loudly
  }
  IndexedEvalCounters counters;
  probe(request.points.subspan(0, num_dims), dims, counters);
  const uint64_t cells_seen = counters.cells_visited + counters.cells_pruned;
  if (cells_seen == 0) return index;
  return static_cast<double>(counters.cells_pruned) >=
                 kIndexBypassMinCellPruneRate *
                     static_cast<double>(cells_seen)
             ? index
             : nullptr;
}

/// Index-accelerated pruned kernel sum over the re-packed summands, in
/// either accumulation space: returns log Σ_i exp(term_i) (`log_space`)
/// or Σ_i exp(term_i), with the same two-pass semantics — and the same
/// bits, pruned-term count included — as materializing every term and
/// calling PrunedLogSumExp / PrunedLinearSum (kernel_table.h). Both
/// spaces share one pruning rule (terms more than `log_prune_gap` below
/// the exact maximum are skipped), which is what lets the index skip
/// whole cells in linear space too.
///
/// `sweep(first, len, out)` must fill out[0..len) with the log terms
/// (seed included) of re-packed summands [first, first+len).
///
/// Pass 1 visits the argmax-bound cell first (best running max before any
/// decision), then every cell whose bound the running max cannot prune;
/// a skipped cell's terms all sit > gap below the final max (see the
/// bound derivation, DESIGN.md §4j), so the exact maximum and the pass-2
/// Kahan add sequence match the baseline term for term. Skipped cells
/// charge no kernel evaluations. Consecutive surviving cells are swept as
/// one merged range, so per-chunk costs (context charge/check, the
/// kernel-eval counter) amortize over kEvalChunk summands even when the
/// grid is fine and cells hold only a handful of members; when nothing
/// prunes, the whole table is one run and pass 1 degenerates to the
/// baseline sweep plus the O(cells) bound pass.
/// `simd` is the model's resolved kernel dispatch: the merged-run sweeps
/// run through the caller's `sweep` callback (which must use the same
/// dispatch), and pass 2 runs through simd.pruned_exp_accum with one
/// resumable ExpSumState across all visited cells — the Kahan adds land
/// in term order regardless of how the cells partition the table, so the
/// result is bit-identical to the non-indexed path at the same level.
template <typename SweepFn>
Result<double> IndexedPrunedSum(const SpatialIndex& index,
                                std::span<const double> x,
                                std::span<const size_t> dims,
                                double log_prune_gap, bool log_space,
                                const SimdDispatch& simd, ExecContext& ctx,
                                ScratchArena& scratch, SweepFn&& sweep,
                                IndexedEvalCounters& counters) {
  const size_t num_cells = index.num_cells();
  std::span<double> terms =
      scratch.Doubles(ScratchArena::kLogTerms, index.num_points());
  std::span<double> bounds =
      scratch.Doubles(ScratchArena::kCellBounds, num_cells);
  std::span<double> visited =
      scratch.Doubles(ScratchArena::kCellFlags, num_cells);
  index.ComputeCellBounds(x, dims, bounds);

  double run_max = -std::numeric_limits<double>::infinity();
  // Sweeps re-packed positions [first, last) chunked, folding the terms
  // into the running max. Ranges span whole runs of surviving cells.
  const auto sweep_range = [&](size_t first, size_t last) -> Status {
    for (; first < last; first += kEvalChunk) {
      const size_t len = std::min(last - first, kEvalChunk);
      Status charge = ctx.ChargeKernelEvals(len * dims.size());
      if (!charge.ok()) return CountEvalTrip(std::move(charge));
      KernelEvalCounter().Increment(len * dims.size());
      double* out = terms.data() + first;
      sweep(first, len, out);
      for (size_t i = 0; i < len; ++i) run_max = std::max(run_max, out[i]);
      Status check = ctx.Check();
      if (!check.ok()) return CountEvalTrip(std::move(check));
    }
    return Status::OK();
  };

  size_t seed_cell = 0;
  for (size_t c = 1; c < num_cells; ++c) {
    if (bounds[c] > bounds[seed_cell]) seed_cell = c;
  }
  visited[seed_cell] = 1.0;
  ++counters.cells_visited;
  UDM_RETURN_IF_ERROR(
      sweep_range(index.cell_begin(seed_cell), index.cell_end(seed_cell)));

  // Scan cells in order, batching consecutive survivors into one run and
  // sweeping it when a skip (or the seed, or the end) breaks the chain.
  // Cells classified while a run is open test against the running max
  // from before that run — a weaker, never-wrong prune; which cells the
  // final sum and pruned-term count include is unaffected (any pass-1
  // skip is also a per-term prune against the final max).
  constexpr size_t kNoRun = std::numeric_limits<size_t>::max();
  size_t run_begin = kNoRun;
  const auto flush_run = [&](size_t run_end) -> Status {
    if (run_begin == kNoRun) return Status::OK();
    const size_t first = run_begin;
    run_begin = kNoRun;
    return sweep_range(first, run_end);
  };
  for (size_t c = 0; c < num_cells; ++c) {
    if (c == seed_cell) {
      UDM_RETURN_IF_ERROR(flush_run(index.cell_begin(c)));
      continue;
    }
    if (run_max - bounds[c] > log_prune_gap + kCellBoundSlack) {
      UDM_RETURN_IF_ERROR(flush_run(index.cell_begin(c)));
      visited[c] = 0.0;
      ++counters.cells_pruned;
      continue;
    }
    visited[c] = 1.0;
    ++counters.cells_visited;
    if (run_begin == kNoRun) run_begin = index.cell_begin(c);
  }
  UDM_RETURN_IF_ERROR(flush_run(index.num_points()));
  // A skipped cell's terms are all strictly below the running max, so the
  // max over visited terms IS the max over all terms — same check, same
  // degenerate result, as the non-indexed path.
  if (!std::isfinite(run_max)) {
    return log_space ? -std::numeric_limits<double>::infinity() : 0.0;
  }
  ExpSumState state;
  const double shift = log_space ? run_max : 0.0;
  for (size_t c = 0; c < num_cells; ++c) {
    const size_t begin = index.cell_begin(c);
    const size_t end = index.cell_end(c);
    if (visited[c] == 0.0) {
      // Every member would have been pruned by the per-term test too;
      // count them so pruned_terms is IndexMode-invariant.
      state.pruned += end - begin;
      continue;
    }
    simd.pruned_exp_accum(terms.data() + begin, end - begin, run_max, shift,
                          log_prune_gap, state);
  }
  counters.pruned_terms += state.pruned;
  return log_space ? run_max + std::log(state.Total())
                   : state.Total();
}

}  // namespace udm::kde_internal

#endif  // UDM_KDE_SPATIAL_INDEX_H_
