#ifndef UDM_KDE_KERNEL_TABLE_H_
#define UDM_KDE_KERNEL_TABLE_H_

/// Precomputed column-major kernel tables and the contiguous sweeps over
/// them — the shared fast path behind ErrorKernelDensity, McDensityModel,
/// and (in its ψ=0 per-dimension form) KernelDensity. Internal to the
/// density estimators; callers use the model Evaluate entry points.

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <span>

#include "common/math_util.h"
#include "common/simd.h"
#include "kde/kernel.h"

namespace udm::kde_internal {

/// Query-independent tables for the Eq. 3 error kernel, one entry per
/// (summand, dimension), laid out column-major (SoA): entry (i, j) of
/// each table lives at [j * num_points + i], so a per-dimension sweep
/// reads three contiguous streams. Built once at Fit/Build time from the
/// row-major training values and error widths; summands are training
/// points for the exact estimators and micro-cluster pseudo-points for
/// the compressed one.
struct ErrorKernelTable {
  size_t num_points = 0;
  size_t num_dims = 0;
  // 64-byte aligned so the explicit SIMD sweeps load full cache lines;
  // columns themselves start at arbitrary offsets (num_points need not be
  // a lane multiple), so the vector kernels use unaligned loads and the
  // alignment is a cache/codegen courtesy, not a correctness requirement.
  AlignedVector<double> values;           // X_ij, column-major
  AlignedVector<double> neg_inv_two_var;  // −1/(2·(h_j² + ψ_ij²))
  AlignedVector<double> log_norm;         // −log(√2π · s_ij)

  /// Transposes `row_values`/`row_psi` (row-major num_points × num_dims)
  /// and evaluates the per-entry constants against `bandwidths`.
  static ErrorKernelTable Build(std::span<const double> row_values,
                                std::span<const double> row_psi,
                                size_t num_points, size_t num_dims,
                                std::span<const double> bandwidths,
                                KernelNormalization normalization);

  /// Re-packs every column into `perm` order (entry i becomes the old
  /// entry perm[i]) — applied once at fit time when a spatial index
  /// chooses a cell-contiguous summand order, so the indexed and
  /// non-indexed sweeps stream the very same memory in the very same
  /// order (the bit-identity precondition of DESIGN.md §4j).
  void Permute(std::span<const size_t> perm);

  const double* ValuesCol(size_t dim) const {
    return values.data() + dim * num_points;
  }
  const double* NegInvTwoVarCol(size_t dim) const {
    return neg_inv_two_var.data() + dim * num_points;
  }
  const double* LogNormCol(size_t dim) const {
    return log_norm.data() + dim * num_points;
  }
};

/// One column-major sweep of the log-kernel over `n` contiguous summands:
///
///   acc[i] = fma((x_d − col[i])², neg_inv_two_var[i], acc[i] + log_norm[i])
///
/// Pure elementwise streaming math (no branches, no cross-iteration
/// dependency). The rounding sequence is pinned with an explicit std::fma
/// — sub, mul, add, fused multiply-add, each rounding once per element —
/// so the AVX2/AVX-512 kernels in kde/simd_sweep.cc, which issue the very
/// same per-lane operations, produce bit-identical accumulators at every
/// lane width (DESIGN.md §4k). This is the portable reference every
/// vector path is tested against. Running it dimension-by-dimension
/// accumulates each summand's log-terms in the same order as the old
/// row-major loop.
inline void SweepLogKernel(double x_d, const double* col,
                           const double* neg_inv_two_var,
                           const double* log_norm, double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double delta = x_d - col[i];
    acc[i] = std::fma(delta * delta, neg_inv_two_var[i], acc[i] + log_norm[i]);
  }
}

/// Same sweep with a single (neg_inv_two_var, log_norm) pair for the whole
/// column — the ψ=0 plain-KDE case, where the per-point tables collapse to
/// one entry per dimension. Same pinned fma sequence as SweepLogKernel.
inline void SweepLogKernelUniform(double x_d, const double* col,
                                  double neg_inv_two_var, double log_norm,
                                  double* acc, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    const double delta = x_d - col[i];
    acc[i] = std::fma(delta * delta, neg_inv_two_var, acc[i] + log_norm);
  }
}

/// Pruned second pass of log-sum-exp: returns log Σ_i exp(log_terms[i])
/// given the exact maximum from pass 1, skipping the exp() of any term
/// more than `log_prune_gap` below the maximum and counting the skips
/// into `*pruned_terms` (if non-null). A pruned term would contribute
/// less than exp(−gap) to a compensated sum whose leading term is 1, so
/// the default gap of ~37 (exp(−37) ≈ 8.5e-17, below one ulp of 1.0)
/// changes the result by at most N·exp(−gap) relative — and the decision
/// depends only on the term values, never on timing or thread count, so
/// pruning is deterministic. A gap of +∞ prunes nothing and reproduces
/// the exact two-pass sum.
inline double PrunedLogSumExp(std::span<const double> log_terms,
                              double max_term, double log_prune_gap,
                              uint64_t* pruned_terms) {
  KahanSum sum;
  uint64_t pruned = 0;
  for (const double term : log_terms) {
    if (max_term - term > log_prune_gap) {
      ++pruned;
      continue;
    }
    sum.Add(std::exp(term - max_term));
  }
  if (pruned_terms != nullptr) *pruned_terms += pruned;
  return max_term + std::log(sum.Total());
}

/// Linear-space counterpart of PrunedLogSumExp: returns Σ_i exp(log_terms[i])
/// (no max shift — the caller wants the plain sum), pruning by the same
/// value-determined gap test so the linear and log paths share one pruning
/// semantics. The error bound is the same: each skipped term is below
/// exp(max − gap), and the sum is at least exp(max), so the relative error
/// is under N·exp(−gap) — invisible at the default gap of ~37. A gap of +∞
/// reproduces the exact sum.
inline double PrunedLinearSum(std::span<const double> log_terms,
                              double max_term, double log_prune_gap,
                              uint64_t* pruned_terms) {
  KahanSum sum;
  uint64_t pruned = 0;
  for (const double term : log_terms) {
    if (max_term - term > log_prune_gap) {
      ++pruned;
      continue;
    }
    sum.Add(std::exp(term));
  }
  if (pruned_terms != nullptr) *pruned_terms += pruned;
  return sum.Total();
}

}  // namespace udm::kde_internal

#endif  // UDM_KDE_KERNEL_TABLE_H_
