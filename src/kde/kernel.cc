#include "kde/kernel.h"

namespace udm {

double KernelValue(KernelType type, double u) {
  switch (type) {
    case KernelType::kGaussian:
      return StdNormalPdf(u);
    case KernelType::kEpanechnikov:
      return std::fabs(u) < 1.0 ? 0.75 * (1.0 - u * u) : 0.0;
    case KernelType::kUniform:
      return std::fabs(u) < 1.0 ? 0.5 : 0.0;
    case KernelType::kTriangular:
      return std::fabs(u) < 1.0 ? 1.0 - std::fabs(u) : 0.0;
  }
  return 0.0;
}

}  // namespace udm
