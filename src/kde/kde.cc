#include "kde/kde.h"

#include "common/math_util.h"

namespace udm {

Result<KernelDensity> KernelDensity::Fit(const Dataset& data,
                                         const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("KernelDensity::Fit: empty dataset");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "KernelDensity::Fit: bandwidth knobs must be positive");
  }
  std::vector<double> values(data.values().begin(), data.values().end());
  std::vector<double> bandwidths =
      ComputeBandwidths(data, options.bandwidth_rule, options.bandwidth_scale,
                        options.min_bandwidth);
  return KernelDensity(std::move(values), data.NumRows(), data.NumDims(),
                       std::move(bandwidths), options.kernel);
}

double KernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return EvaluateSubspace(x, all);
}

double KernelDensity::EvaluateSubspace(std::span<const double> x,
                                       std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  KahanSum sum;
  for (size_t i = 0; i < num_points_; ++i) {
    const double* row = values_.data() + i * num_dims_;
    double product = 1.0;
    for (size_t dim : dims) {
      UDM_DCHECK(dim < num_dims_);
      product *= ScaledKernelValue(kernel_, x[dim] - row[dim], bandwidths_[dim]);
      if (product == 0.0) break;  // compact kernels cut off early
    }
    sum.Add(product);
  }
  return sum.Total() / static_cast<double>(num_points_);
}

}  // namespace udm
