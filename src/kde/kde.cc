#include "kde/kde.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "kde/kernel_table.h"
#include "obs/trace.h"

namespace udm {

using kde_internal::CountEvalTrip;
using kde_internal::EvalLatencyScope;
using kde_internal::kEvalChunk;
using kde_internal::KernelEvalCounter;
using kde_internal::SweepLogKernelUniform;

KernelDensity::KernelDensity(std::vector<double> columns, size_t num_points,
                             size_t num_dims, std::vector<double> bandwidths,
                             KernelType kernel)
    : columns_(std::move(columns)),
      num_points_(num_points),
      num_dims_(num_dims),
      all_dims_(num_dims),
      bandwidths_(std::move(bandwidths)),
      kernel_(kernel) {
  for (size_t j = 0; j < num_dims_; ++j) all_dims_[j] = j;
  if (kernel_ == KernelType::kGaussian) {
    neg_inv_two_var_.resize(num_dims_);
    log_norm_.resize(num_dims_);
    for (size_t j = 0; j < num_dims_; ++j) {
      neg_inv_two_var_[j] = ErrorKernelNegInvTwoVar(bandwidths_[j], 0.0);
      log_norm_[j] = ErrorKernelLogNorm(bandwidths_[j], 0.0);
    }
  }
}

Result<KernelDensity> KernelDensity::Fit(const Dataset& data,
                                         const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("KernelDensity::Fit: empty dataset");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "KernelDensity::Fit: bandwidth knobs must be positive");
  }
  // Transpose to the column-major (SoA) layout the sweeps stream over.
  const std::span<const double> rows = data.values();
  const size_t n = data.NumRows();
  const size_t d = data.NumDims();
  std::vector<double> columns(n * d);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) columns[j * n + i] = rows[i * d + j];
  }
  std::vector<double> bandwidths =
      ComputeBandwidths(data, options.bandwidth_rule, options.bandwidth_scale,
                        options.min_bandwidth);
  return KernelDensity(std::move(columns), n, d, std::move(bandwidths),
                       options.kernel);
}

double KernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  return EvaluateSubspace(x, all_dims_);
}

double KernelDensity::EvaluateSubspace(std::span<const double> x,
                                       std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result =
      SubspaceDensity(x, dims, unbounded, ScratchArena::ThreadLocal());
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> KernelDensity::Evaluate(const EvalRequest& request) const {
  Result<EvalResult> result = kde_internal::BatchEvaluate(
      request, num_dims_, num_points_, "kde.eval_batch",
      [this, &request](std::span<const double> x, std::span<const size_t> dims,
                       ExecContext& ctx,
                       ScratchArena& scratch) -> Result<double> {
        Result<double> density = SubspaceDensity(x, dims, ctx, scratch);
        if (density.ok() && request.log_space) {
          return std::log(density.value());
        }
        return density;
      });
  return result;
}

Result<double> KernelDensity::SubspaceDensity(std::span<const double> x,
                                              std::span<const size_t> dims,
                                              ExecContext& ctx,
                                              ScratchArena& scratch) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("kde.eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  const bool gaussian = kernel_ == KernelType::kGaussian;
  std::span<double> acc = scratch.Doubles(ScratchArena::kProducts, kEvalChunk);
  KahanSum sum;
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    // Budget accounting is at chunk granularity; compact kernels whose
    // product hits zero early still charge the full chunk.
    Status charge = ctx.ChargeKernelEvals(len * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size());
    if (gaussian) {
      std::fill_n(acc.data(), len, 0.0);
      for (size_t dim : dims) {
        UDM_DCHECK(dim < num_dims_);
        SweepLogKernelUniform(x[dim], columns_.data() + dim * num_points_ +
                                          start,
                              neg_inv_two_var_[dim], log_norm_[dim],
                              acc.data(), len);
      }
      for (size_t i = 0; i < len; ++i) sum.Add(std::exp(acc[i]));
    } else {
      std::fill_n(acc.data(), len, 1.0);
      for (size_t dim : dims) {
        UDM_DCHECK(dim < num_dims_);
        const double* col = columns_.data() + dim * num_points_ + start;
        const double x_d = x[dim];
        const double h = bandwidths_[dim];
        for (size_t i = 0; i < len; ++i) {
          acc[i] *= ScaledKernelValue(kernel_, x_d - col[i], h);
        }
      }
      for (size_t i = 0; i < len; ++i) sum.Add(acc[i]);
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  return sum.Total() / static_cast<double>(num_points_);
}

}  // namespace udm
