#include "kde/kde.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "kde/kernel_table.h"
#include "obs/trace.h"

namespace udm {

using kde_internal::CellsPrunedCounter;
using kde_internal::CellsVisitedCounter;
using kde_internal::CountEvalTrip;
using kde_internal::EvalLatencyScope;
using kde_internal::ExpSumState;
using kde_internal::GatherColumns;
using kde_internal::GetSimdDispatch;
using kde_internal::IndexedEvalCounters;
using kde_internal::IndexedPrunedSum;
using kde_internal::kEvalChunk;
using kde_internal::KernelEvalCounter;
using kde_internal::PrunedTermsCounter;
using kde_internal::ResolveIndexMode;
using kde_internal::ShouldBuildIndex;
using kde_internal::SpatialIndex;

KernelDensity::KernelDensity(std::vector<double> columns, size_t num_points,
                             size_t num_dims, std::vector<double> bandwidths,
                             KernelType kernel,
                             const DensityEvalOptions& options)
    : columns_(std::move(columns)),
      num_points_(num_points),
      num_dims_(num_dims),
      all_dims_(num_dims),
      bandwidths_(std::move(bandwidths)),
      log_prune_threshold_(options.log_prune_threshold),
      kernel_(kernel),
      simd_(&GetSimdDispatch(EffectiveSimdLevel(options.simd))) {
  for (size_t j = 0; j < num_dims_; ++j) all_dims_[j] = j;
  if (kernel_ == KernelType::kGaussian) {
    neg_inv_two_var_.resize(num_dims_);
    log_norm_.resize(num_dims_);
    for (size_t j = 0; j < num_dims_; ++j) {
      neg_inv_two_var_[j] = ErrorKernelNegInvTwoVar(bandwidths_[j], 0.0);
      log_norm_[j] = ErrorKernelLogNorm(bandwidths_[j], 0.0);
    }
    if (ShouldBuildIndex(options.index, num_points_)) {
      index_ = SpatialIndex::Build(columns_, num_points_, num_dims_,
                                   neg_inv_two_var_, log_norm_, bandwidths_,
                                   /*log_seed=*/{}, options.index);
      columns_ = GatherColumns(columns_, num_points_, num_dims_,
                               index_->permutation());
    }
  }
}

Result<KernelDensity> KernelDensity::Fit(const Dataset& data,
                                         const DensityEvalOptions& options,
                                         KernelType kernel) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("KernelDensity::Fit: empty dataset");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "KernelDensity::Fit: bandwidth knobs must be positive");
  }
  if (std::isnan(options.log_prune_threshold) ||
      options.log_prune_threshold <= 0.0) {
    return Status::InvalidArgument(
        "KernelDensity::Fit: log_prune_threshold must be positive");
  }
  // Transpose to the column-major (SoA) layout the sweeps stream over.
  const std::span<const double> rows = data.values();
  const size_t n = data.NumRows();
  const size_t d = data.NumDims();
  std::vector<double> columns(n * d);
  for (size_t j = 0; j < d; ++j) {
    for (size_t i = 0; i < n; ++i) columns[j * n + i] = rows[i * d + j];
  }
  std::vector<double> bandwidths =
      ComputeBandwidths(data, options.bandwidth_rule, options.bandwidth_scale,
                        options.min_bandwidth);
  return KernelDensity(std::move(columns), n, d, std::move(bandwidths),
                       kernel, options);
}

double KernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  return EvaluateSubspace(x, all_dims_);
}

double KernelDensity::EvaluateSubspace(std::span<const double> x,
                                       std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result =
      SubspaceDensity(x, dims, unbounded, ScratchArena::ThreadLocal(),
                      index_.has_value() ? &*index_ : nullptr, nullptr);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> KernelDensity::Evaluate(const EvalRequest& request) const {
  UDM_ASSIGN_OR_RETURN(
      const SpatialIndex* index,
      ResolveIndexMode(index_, request.index, "KernelDensity"));
  std::atomic<uint64_t> pruned_total{0};
  std::atomic<uint64_t> cells_visited_total{0};
  std::atomic<uint64_t> cells_pruned_total{0};
  const auto count_tile = [&](const IndexedEvalCounters& counters) {
    if (counters.pruned_terms != 0) {
      pruned_total.fetch_add(counters.pruned_terms,
                             std::memory_order_relaxed);
    }
    if (counters.cells_visited != 0) {
      cells_visited_total.fetch_add(counters.cells_visited,
                                    std::memory_order_relaxed);
    }
    if (counters.cells_pruned != 0) {
      cells_pruned_total.fetch_add(counters.cells_pruned,
                                   std::memory_order_relaxed);
    }
  };
  // Only the dense Gaussian path shares column panels across queries;
  // indexed and non-Gaussian evaluation stays per query (tile 1). Large
  // kAuto batches probe whether the index actually prunes and fall back
  // to the dense tiled path (bit-identical) when it does not.
  const size_t dense_tile = kernel_ == KernelType::kGaussian
                                ? kde_internal::QueryTileSize(num_points_)
                                : 1;
  index = kde_internal::ResolveBatchIndex(
      index, request, num_dims_, dense_tile, all_dims_,
      [&](std::span<const double> x, std::span<const size_t> dims,
          IndexedEvalCounters& counters) {
        ExecContext unbounded;
        (void)SubspaceDensity(x, dims, unbounded, ScratchArena::ThreadLocal(),
                              index, &counters);
      });
  const bool dense_gaussian =
      kernel_ == KernelType::kGaussian && index == nullptr;
  const size_t tile = dense_gaussian ? dense_tile : 1;
  Result<EvalResult> result = kde_internal::BatchEvaluateTiles(
      request, num_dims_, num_points_, tile, "kde.eval_batch",
      [this, index, dense_gaussian, &request, &count_tile](
          std::span<const double> points, size_t count,
          std::span<const size_t> dims, ExecContext& ctx,
          ScratchArena& scratch, double* out) -> Status {
        IndexedEvalCounters counters;
        if (dense_gaussian) {
          const Status status =
              EvalTileDense(points, count, dims, ctx, scratch, out, &counters);
          count_tile(counters);
          if (!status.ok()) return status;
        } else {
          for (size_t q = 0; q < count; ++q) {
            const Result<double> density =
                SubspaceDensity(points.subspan(q * num_dims_, num_dims_),
                                dims, ctx, scratch, index, &counters);
            if (!density.ok()) {
              count_tile(counters);
              return density.status();
            }
            out[q] = density.value();
          }
          count_tile(counters);
        }
        if (request.log_space) {
          for (size_t q = 0; q < count; ++q) out[q] = std::log(out[q]);
        }
        return Status::OK();
      });
  if (result.ok()) {
    result.value().stats.pruned_terms =
        pruned_total.load(std::memory_order_relaxed);
    result.value().stats.cells_visited =
        cells_visited_total.load(std::memory_order_relaxed);
    result.value().stats.cells_pruned =
        cells_pruned_total.load(std::memory_order_relaxed);
    result.value().stats.simd = simd_->level;
  }
  return result;
}

Status KernelDensity::EvalTileDense(std::span<const double> points,
                                    size_t count, std::span<const size_t> dims,
                                    ExecContext& ctx, ScratchArena& scratch,
                                    double* out,
                                    IndexedEvalCounters* counters) const {
  UDM_TRACE_SPAN("kde.eval_tile");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  std::span<double> log_terms =
      scratch.Doubles(ScratchArena::kLogTerms, count * num_points_);
  double max_term[kde_internal::kMaxQueryTile];
  std::fill_n(max_term, count, -std::numeric_limits<double>::infinity());
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size() * count);
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size() * count);
    for (size_t q = 0; q < count; ++q) {
      const std::span<const double> x = points.subspan(q * num_dims_, num_dims_);
      double* terms = log_terms.data() + q * num_points_ + start;
      std::fill_n(terms, len, 0.0);
      for (size_t dim : dims) {
        UDM_DCHECK(dim < num_dims_);
        simd_->sweep_uniform(x[dim],
                             columns_.data() + dim * num_points_ + start,
                             neg_inv_two_var_[dim], log_norm_[dim], terms,
                             len);
      }
      for (size_t i = 0; i < len; ++i) {
        max_term[q] = std::max(max_term[q], terms[i]);
      }
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  for (size_t q = 0; q < count; ++q) {
    if (!std::isfinite(max_term[q])) {
      out[q] = 0.0;
      continue;
    }
    ExpSumState state;
    simd_->pruned_exp_accum(log_terms.data() + q * num_points_, num_points_,
                            max_term[q], /*shift=*/0.0, log_prune_threshold_,
                            state);
    if (state.pruned != 0) {
      PrunedTermsCounter().Increment(state.pruned);
      if (counters != nullptr) counters->pruned_terms += state.pruned;
    }
    out[q] = state.Total() / static_cast<double>(num_points_);
  }
  return Status::OK();
}

Result<double> KernelDensity::SubspaceDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, const SpatialIndex* index,
    IndexedEvalCounters* counters) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("kde.eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  const bool gaussian = kernel_ == KernelType::kGaussian;
  const auto sweep_log = [&](size_t first, size_t len, double* terms) {
    std::fill_n(terms, len, 0.0);
    for (size_t dim : dims) {
      UDM_DCHECK(dim < num_dims_);
      simd_->sweep_uniform(x[dim],
                           columns_.data() + dim * num_points_ + first,
                           neg_inv_two_var_[dim], log_norm_[dim], terms,
                           len);
    }
  };
  if (index != nullptr && gaussian) {
    IndexedEvalCounters local;
    Result<double> total = IndexedPrunedSum(*index, x, dims,
                                            log_prune_threshold_,
                                            /*log_space=*/false, *simd_, ctx,
                                            scratch, sweep_log, local);
    if (local.cells_visited != 0) {
      CellsVisitedCounter().Increment(local.cells_visited);
    }
    if (local.cells_pruned != 0) {
      CellsPrunedCounter().Increment(local.cells_pruned);
    }
    if (counters != nullptr) {
      counters->cells_visited += local.cells_visited;
      counters->cells_pruned += local.cells_pruned;
      counters->pruned_terms += local.pruned_terms;
    }
    if (!total.ok()) return total.status();
    if (local.pruned_terms != 0) {
      PrunedTermsCounter().Increment(local.pruned_terms);
    }
    return total.value() / static_cast<double>(num_points_);
  }
  if (gaussian) {
    // Two-pass pruned sum under the same gap test as the indexed path
    // (and as ErrorKernelDensity), so cell skips stay bit-identical.
    std::span<double> log_terms =
        scratch.Doubles(ScratchArena::kLogTerms, num_points_);
    double max_term = -std::numeric_limits<double>::infinity();
    for (size_t start = 0; start < num_points_; start += kEvalChunk) {
      const size_t end = std::min(start + kEvalChunk, num_points_);
      const size_t len = end - start;
      Status charge = ctx.ChargeKernelEvals(len * dims.size());
      if (!charge.ok()) return CountEvalTrip(std::move(charge));
      KernelEvalCounter().Increment(len * dims.size());
      double* terms = log_terms.data() + start;
      sweep_log(start, len, terms);
      for (size_t i = 0; i < len; ++i) {
        max_term = std::max(max_term, terms[i]);
      }
      Status check = ctx.Check();
      if (!check.ok()) return CountEvalTrip(std::move(check));
    }
    if (!std::isfinite(max_term)) return 0.0;
    ExpSumState state;
    simd_->pruned_exp_accum(log_terms.data(), num_points_, max_term,
                            /*shift=*/0.0, log_prune_threshold_, state);
    if (state.pruned != 0) {
      PrunedTermsCounter().Increment(state.pruned);
      if (counters != nullptr) counters->pruned_terms += state.pruned;
    }
    return state.Total() / static_cast<double>(num_points_);
  }
  std::span<double> acc = scratch.Doubles(ScratchArena::kProducts, kEvalChunk);
  KahanSum sum;
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    // Budget accounting is at chunk granularity; compact kernels whose
    // product hits zero early still charge the full chunk.
    Status charge = ctx.ChargeKernelEvals(len * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size());
    std::fill_n(acc.data(), len, 1.0);
    for (size_t dim : dims) {
      UDM_DCHECK(dim < num_dims_);
      const double* col = columns_.data() + dim * num_points_ + start;
      const double x_d = x[dim];
      const double h = bandwidths_[dim];
      for (size_t i = 0; i < len; ++i) {
        acc[i] *= ScaledKernelValue(kernel_, x_d - col[i], h);
      }
    }
    // Compact kernels produce exact zeros outside their support; zeros
    // never touch the compensated sum.
    for (size_t i = 0; i < len; ++i) {
      if (acc[i] != 0.0) sum.Add(acc[i]);
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  return sum.Total() / static_cast<double>(num_points_);
}

}  // namespace udm
