#include "kde/kde.h"

#include <algorithm>
#include <cmath>

#include "common/math_util.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "obs/trace.h"

namespace udm {

using kde_internal::CountEvalTrip;
using kde_internal::EvalLatencyScope;
using kde_internal::KernelEvalCounter;

namespace {

/// Points per deadline/cancel check (see error_kde.cc for rationale).
constexpr size_t kEvalChunk = 256;

}  // namespace

Result<KernelDensity> KernelDensity::Fit(const Dataset& data,
                                         const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("KernelDensity::Fit: empty dataset");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "KernelDensity::Fit: bandwidth knobs must be positive");
  }
  std::vector<double> values(data.values().begin(), data.values().end());
  std::vector<double> bandwidths =
      ComputeBandwidths(data, options.bandwidth_rule, options.bandwidth_scale,
                        options.min_bandwidth);
  return KernelDensity(std::move(values), data.NumRows(), data.NumDims(),
                       std::move(bandwidths), options.kernel);
}

double KernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return EvaluateSubspace(x, all);
}

double KernelDensity::EvaluateSubspace(std::span<const double> x,
                                       std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result = SubspaceDensity(x, dims, unbounded);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> KernelDensity::Evaluate(const EvalRequest& request) const {
  Result<EvalResult> result = kde_internal::BatchEvaluate(
      request, num_dims_, num_points_, "kde.eval_batch",
      [this, &request](std::span<const double> x, std::span<const size_t> dims,
                       ExecContext& ctx) -> Result<double> {
        Result<double> density = SubspaceDensity(x, dims, ctx);
        if (density.ok() && request.log_space) {
          return std::log(density.value());
        }
        return density;
      });
  return result;
}

Result<double> KernelDensity::Evaluate(std::span<const double> x,
                                       ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("Evaluate: dimension mismatch");
  }
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return SubspaceDensity(x, all, ctx);
}

Result<double> KernelDensity::EvaluateSubspace(std::span<const double> x,
                                               std::span<const size_t> dims,
                                               ExecContext& ctx) const {
  return SubspaceDensity(x, dims, ctx);
}

Result<double> KernelDensity::SubspaceDensity(std::span<const double> x,
                                              std::span<const size_t> dims,
                                              ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("kde.eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  KahanSum sum;
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    // Budget accounting is at chunk granularity; compact kernels that cut
    // off early still charge the full chunk.
    Status charge = ctx.ChargeKernelEvals((end - start) * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment((end - start) * dims.size());
    for (size_t i = start; i < end; ++i) {
      const double* row = values_.data() + i * num_dims_;
      double product = 1.0;
      for (size_t dim : dims) {
        UDM_DCHECK(dim < num_dims_);
        product *=
            ScaledKernelValue(kernel_, x[dim] - row[dim], bandwidths_[dim]);
        if (product == 0.0) break;  // compact kernels cut off early
      }
      sum.Add(product);
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  return sum.Total() / static_cast<double>(num_points_);
}

}  // namespace udm
