#include "kde/error_kde.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "obs/trace.h"

namespace udm {

using kde_internal::CountEvalTrip;
using kde_internal::ErrorKernelTable;
using kde_internal::EvalLatencyScope;
using kde_internal::kEvalChunk;
using kde_internal::KernelEvalCounter;
using kde_internal::PrunedLogSumExp;
using kde_internal::PrunedTermsCounter;
using kde_internal::SweepLogKernel;

Result<ErrorKernelDensity> ErrorKernelDensity::Fit(
    const Dataset& data, const ErrorModel& errors,
    const ErrorDensityOptions& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("ErrorKernelDensity::Fit: empty dataset");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: error model shape mismatch");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: bandwidth knobs must be positive");
  }
  if (std::isnan(options.log_prune_threshold) ||
      options.log_prune_threshold <= 0.0) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: log_prune_threshold must be positive");
  }
  std::vector<double> psi;
  psi.reserve(data.NumRows() * data.NumDims());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto row_psi = errors.RowPsi(i);
    psi.insert(psi.end(), row_psi.begin(), row_psi.end());
  }
  std::vector<DimensionStats> stats = data.ComputeStats();
  if (options.deconvolve_bandwidth) {
    // Remove the mean error mass from each dimension's variance before the
    // bandwidth rule (floored so h never collapses entirely).
    for (size_t j = 0; j < data.NumDims(); ++j) {
      double mean_psi2 = 0.0;
      for (size_t i = 0; i < data.NumRows(); ++i) {
        mean_psi2 += psi[i * data.NumDims() + j] * psi[i * data.NumDims() + j];
      }
      mean_psi2 /= static_cast<double>(data.NumRows());
      const double corrected =
          std::max(stats[j].variance - mean_psi2, 0.01 * stats[j].variance);
      stats[j].variance = corrected;
      stats[j].stddev = std::sqrt(corrected);
    }
  }
  std::vector<double> bandwidths = ComputeBandwidthsFromStats(
      stats, data.NumRows(), options.bandwidth_rule, options.bandwidth_scale,
      options.min_bandwidth);
  ErrorKernelTable table =
      ErrorKernelTable::Build(data.values(), psi, data.NumRows(),
                              data.NumDims(), bandwidths,
                              options.normalization);
  return ErrorKernelDensity(std::move(table), std::move(bandwidths),
                            options.normalization,
                            options.log_prune_threshold);
}

double ErrorKernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  return EvaluateSubspace(x, all_dims_);
}

double ErrorKernelDensity::EvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result =
      SubspaceDensity(x, dims, unbounded, ScratchArena::ThreadLocal());
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

double ErrorKernelDensity::LogEvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "LogEvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result = SubspaceLogDensity(
      x, dims, unbounded, ScratchArena::ThreadLocal(), nullptr);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> ErrorKernelDensity::Evaluate(
    const EvalRequest& request) const {
  const bool log_space = request.log_space;
  std::atomic<uint64_t> pruned_total{0};
  Result<EvalResult> result = kde_internal::BatchEvaluate(
      request, num_dims_, num_points_, "error_kde.eval_batch",
      [this, log_space, &pruned_total](
          std::span<const double> x, std::span<const size_t> dims,
          ExecContext& ctx, ScratchArena& scratch) -> Result<double> {
        if (!log_space) return SubspaceDensity(x, dims, ctx, scratch);
        uint64_t pruned = 0;
        Result<double> density =
            SubspaceLogDensity(x, dims, ctx, scratch, &pruned);
        if (pruned != 0) {
          pruned_total.fetch_add(pruned, std::memory_order_relaxed);
        }
        return density;
      });
  if (result.ok()) {
    result.value().stats.pruned_terms =
        pruned_total.load(std::memory_order_relaxed);
  }
  return result;
}

Result<double> ErrorKernelDensity::SubspaceDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("error_kde.eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  std::span<double> log_product =
      scratch.Doubles(ScratchArena::kProducts, kEvalChunk);
  KahanSum sum;
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size());
    std::fill_n(log_product.data(), len, 0.0);
    for (size_t dim : dims) {
      UDM_DCHECK(dim < num_dims_);
      SweepLogKernel(x[dim], table_.ValuesCol(dim) + start,
                     table_.NegInvTwoVarCol(dim) + start,
                     table_.LogNormCol(dim) + start, log_product.data(), len);
    }
    for (size_t i = 0; i < len; ++i) sum.Add(std::exp(log_product[i]));
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  return sum.Total() / static_cast<double>(num_points_);
}

Result<double> ErrorKernelDensity::SubspaceLogDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, uint64_t* pruned_terms) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("LogEvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("error_kde.log_eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  // Pass 1: materialize every log-term via the column-major sweeps and
  // find the exact maximum. Pass 2 (PrunedLogSumExp) accumulates
  // exp(term - max), skipping terms the pruning gap proves negligible.
  std::span<double> log_terms =
      scratch.Doubles(ScratchArena::kLogTerms, num_points_);
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size());
    double* terms = log_terms.data() + start;
    std::fill_n(terms, len, 0.0);
    for (size_t dim : dims) {
      UDM_DCHECK(dim < num_dims_);
      SweepLogKernel(x[dim], table_.ValuesCol(dim) + start,
                     table_.NegInvTwoVarCol(dim) + start,
                     table_.LogNormCol(dim) + start, terms, len);
    }
    for (size_t i = 0; i < len; ++i) max_term = std::max(max_term, terms[i]);
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  uint64_t pruned = 0;
  const double log_sum =
      PrunedLogSumExp(log_terms, max_term, log_prune_threshold_, &pruned);
  if (pruned != 0) {
    PrunedTermsCounter().Increment(pruned);
    if (pruned_terms != nullptr) *pruned_terms += pruned;
  }
  return log_sum - std::log(static_cast<double>(num_points_));
}

}  // namespace udm
