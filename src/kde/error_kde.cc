#include "kde/error_kde.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "obs/trace.h"

namespace udm {

using kde_internal::CountEvalTrip;
using kde_internal::EvalLatencyScope;
using kde_internal::KernelEvalCounter;

Result<ErrorKernelDensity> ErrorKernelDensity::Fit(
    const Dataset& data, const ErrorModel& errors,
    const ErrorDensityOptions& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("ErrorKernelDensity::Fit: empty dataset");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: error model shape mismatch");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: bandwidth knobs must be positive");
  }
  std::vector<double> values(data.values().begin(), data.values().end());
  std::vector<double> psi;
  psi.reserve(values.size());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto row_psi = errors.RowPsi(i);
    psi.insert(psi.end(), row_psi.begin(), row_psi.end());
  }
  std::vector<DimensionStats> stats = data.ComputeStats();
  if (options.deconvolve_bandwidth) {
    // Remove the mean error mass from each dimension's variance before the
    // bandwidth rule (floored so h never collapses entirely).
    for (size_t j = 0; j < data.NumDims(); ++j) {
      double mean_psi2 = 0.0;
      for (size_t i = 0; i < data.NumRows(); ++i) {
        mean_psi2 += psi[i * data.NumDims() + j] * psi[i * data.NumDims() + j];
      }
      mean_psi2 /= static_cast<double>(data.NumRows());
      const double corrected =
          std::max(stats[j].variance - mean_psi2, 0.01 * stats[j].variance);
      stats[j].variance = corrected;
      stats[j].stddev = std::sqrt(corrected);
    }
  }
  std::vector<double> bandwidths = ComputeBandwidthsFromStats(
      stats, data.NumRows(), options.bandwidth_rule, options.bandwidth_scale,
      options.min_bandwidth);
  return ErrorKernelDensity(std::move(values), std::move(psi), data.NumRows(),
                            data.NumDims(), std::move(bandwidths),
                            options.normalization);
}

namespace {

/// Points per deadline/cancel check in the evaluation loops: large enough
/// to amortize the clock read, small enough that a deadline is honored
/// within a fraction of a millisecond of kernel math.
constexpr size_t kEvalChunk = 256;

}  // namespace

double ErrorKernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return EvaluateSubspace(x, all);
}

double ErrorKernelDensity::EvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result = SubspaceDensity(x, dims, unbounded);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

double ErrorKernelDensity::LogEvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "LogEvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result = SubspaceLogDensity(x, dims, unbounded);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> ErrorKernelDensity::Evaluate(
    const EvalRequest& request) const {
  const bool log_space = request.log_space;
  return kde_internal::BatchEvaluate(
      request, num_dims_, num_points_, "error_kde.eval_batch",
      [this, log_space](std::span<const double> x,
                        std::span<const size_t> dims,
                        ExecContext& ctx) -> Result<double> {
        return log_space ? SubspaceLogDensity(x, dims, ctx)
                         : SubspaceDensity(x, dims, ctx);
      });
}

Result<double> ErrorKernelDensity::Evaluate(std::span<const double> x,
                                            ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("Evaluate: dimension mismatch");
  }
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return SubspaceDensity(x, all, ctx);
}

Result<double> ErrorKernelDensity::EvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  return SubspaceDensity(x, dims, ctx);
}

Result<double> ErrorKernelDensity::SubspaceDensity(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("error_kde.eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  KahanSum sum;
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    Status charge = ctx.ChargeKernelEvals((end - start) * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment((end - start) * dims.size());
    for (size_t i = start; i < end; ++i) {
      const double* row = values_.data() + i * num_dims_;
      const double* row_psi = psi_.data() + i * num_dims_;
      double log_product = 0.0;
      for (size_t dim : dims) {
        UDM_DCHECK(dim < num_dims_);
        log_product += LogErrorKernelValue(x[dim] - row[dim], bandwidths_[dim],
                                           row_psi[dim], normalization_);
      }
      sum.Add(std::exp(log_product));
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  return sum.Total() / static_cast<double>(num_points_);
}

Result<double> ErrorKernelDensity::LogEvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  return SubspaceLogDensity(x, dims, ctx);
}

Result<double> ErrorKernelDensity::SubspaceLogDensity(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("LogEvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("error_kde.log_eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  // Two passes: find the max log-term, then accumulate exp(term - max).
  std::vector<double> log_terms(num_points_);
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    Status charge = ctx.ChargeKernelEvals((end - start) * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment((end - start) * dims.size());
    for (size_t i = start; i < end; ++i) {
      const double* row = values_.data() + i * num_dims_;
      const double* row_psi = psi_.data() + i * num_dims_;
      double log_product = 0.0;
      for (size_t dim : dims) {
        log_product += LogErrorKernelValue(x[dim] - row[dim], bandwidths_[dim],
                                           row_psi[dim], normalization_);
      }
      log_terms[i] = log_product;
      max_term = std::max(max_term, log_product);
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  KahanSum sum;
  for (double term : log_terms) sum.Add(std::exp(term - max_term));
  return max_term + std::log(sum.Total()) -
         std::log(static_cast<double>(num_points_));
}

}  // namespace udm
