#include "kde/error_kde.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "obs/trace.h"

namespace udm {

using kde_internal::CellsPrunedCounter;
using kde_internal::CellsVisitedCounter;
using kde_internal::CountEvalTrip;
using kde_internal::ErrorKernelTable;
using kde_internal::EvalLatencyScope;
using kde_internal::IndexedEvalCounters;
using kde_internal::IndexedPrunedSum;
using kde_internal::ExpSumState;
using kde_internal::GetSimdDispatch;
using kde_internal::kEvalChunk;
using kde_internal::KernelEvalCounter;
using kde_internal::kMaxQueryTile;
using kde_internal::PrunedTermsCounter;
using kde_internal::ResolveIndexMode;
using kde_internal::ShouldBuildIndex;
using kde_internal::SpatialIndex;

namespace {

/// Flushes one query's index work accounting to the live metrics and the
/// caller's (optional) batch accumulator.
void CountIndexedCells(const IndexedEvalCounters& local,
                       IndexedEvalCounters* out) {
  if (local.cells_visited != 0) {
    CellsVisitedCounter().Increment(local.cells_visited);
  }
  if (local.cells_pruned != 0) {
    CellsPrunedCounter().Increment(local.cells_pruned);
  }
  if (out != nullptr) {
    out->cells_visited += local.cells_visited;
    out->cells_pruned += local.cells_pruned;
    out->pruned_terms += local.pruned_terms;
  }
}

}  // namespace

ErrorKernelDensity::ErrorKernelDensity(ErrorKernelTable table,
                                       std::vector<double> bandwidths,
                                       const DensityEvalOptions& options)
    : table_(std::move(table)),
      num_points_(table_.num_points),
      num_dims_(table_.num_dims),
      all_dims_(MakeIdentityDims(num_dims_)),
      bandwidths_(std::move(bandwidths)),
      normalization_(options.normalization),
      log_prune_threshold_(options.log_prune_threshold),
      simd_(&GetSimdDispatch(EffectiveSimdLevel(options.simd))) {
  if (ShouldBuildIndex(options.index, num_points_)) {
    index_ = SpatialIndex::Build(table_.values, num_points_, num_dims_,
                                 table_.neg_inv_two_var, table_.log_norm,
                                 bandwidths_, /*log_seed=*/{}, options.index);
    // Re-pack the table cell-contiguously so the indexed and non-indexed
    // paths sweep the same memory in the same order (bit-identity).
    table_.Permute(index_->permutation());
  }
}

Result<ErrorKernelDensity> ErrorKernelDensity::Fit(
    const Dataset& data, const ErrorModel& errors,
    const DensityEvalOptions& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("ErrorKernelDensity::Fit: empty dataset");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: error model shape mismatch");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: bandwidth knobs must be positive");
  }
  if (std::isnan(options.log_prune_threshold) ||
      options.log_prune_threshold <= 0.0) {
    return Status::InvalidArgument(
        "ErrorKernelDensity::Fit: log_prune_threshold must be positive");
  }
  std::vector<double> psi;
  psi.reserve(data.NumRows() * data.NumDims());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto row_psi = errors.RowPsi(i);
    psi.insert(psi.end(), row_psi.begin(), row_psi.end());
  }
  std::vector<DimensionStats> stats = data.ComputeStats();
  if (options.deconvolve_bandwidth) {
    // Remove the mean error mass from each dimension's variance before the
    // bandwidth rule (floored so h never collapses entirely).
    for (size_t j = 0; j < data.NumDims(); ++j) {
      double mean_psi2 = 0.0;
      for (size_t i = 0; i < data.NumRows(); ++i) {
        mean_psi2 += psi[i * data.NumDims() + j] * psi[i * data.NumDims() + j];
      }
      mean_psi2 /= static_cast<double>(data.NumRows());
      const double corrected =
          std::max(stats[j].variance - mean_psi2, 0.01 * stats[j].variance);
      stats[j].variance = corrected;
      stats[j].stddev = std::sqrt(corrected);
    }
  }
  std::vector<double> bandwidths = ComputeBandwidthsFromStats(
      stats, data.NumRows(), options.bandwidth_rule, options.bandwidth_scale,
      options.min_bandwidth);
  ErrorKernelTable table =
      ErrorKernelTable::Build(data.values(), psi, data.NumRows(),
                              data.NumDims(), bandwidths,
                              options.normalization);
  return ErrorKernelDensity(std::move(table), std::move(bandwidths), options);
}

double ErrorKernelDensity::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  return EvaluateSubspace(x, all_dims_);
}

double ErrorKernelDensity::EvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result =
      SubspaceDensity(x, dims, unbounded, ScratchArena::ThreadLocal(),
                      index_.has_value() ? &*index_ : nullptr, nullptr);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

double ErrorKernelDensity::LogEvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "LogEvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result = SubspaceLogDensity(
      x, dims, unbounded, ScratchArena::ThreadLocal(),
      index_.has_value() ? &*index_ : nullptr, nullptr);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> ErrorKernelDensity::Evaluate(
    const EvalRequest& request) const {
  UDM_ASSIGN_OR_RETURN(
      const SpatialIndex* index,
      ResolveIndexMode(index_, request.index, "ErrorKernelDensity"));
  const bool log_space = request.log_space;
  std::atomic<uint64_t> pruned_total{0};
  std::atomic<uint64_t> cells_visited_total{0};
  std::atomic<uint64_t> cells_pruned_total{0};
  const auto count_tile = [&](const IndexedEvalCounters& counters) {
    if (counters.pruned_terms != 0) {
      pruned_total.fetch_add(counters.pruned_terms,
                             std::memory_order_relaxed);
    }
    if (counters.cells_visited != 0) {
      cells_visited_total.fetch_add(counters.cells_visited,
                                    std::memory_order_relaxed);
    }
    if (counters.cells_pruned != 0) {
      cells_pruned_total.fetch_add(counters.cells_pruned,
                                   std::memory_order_relaxed);
    }
  };
  // The indexed path prunes per query, so it cannot share panels; the
  // dense path tiles queries against each cache-resident table panel.
  // Large kAuto batches probe whether the index actually prunes and fall
  // back to the dense tiled path (bit-identical) when it does not.
  const size_t dense_tile = kde_internal::QueryTileSize(num_points_);
  index = kde_internal::ResolveBatchIndex(
      index, request, num_dims_, dense_tile, all_dims_,
      [&](std::span<const double> x, std::span<const size_t> dims,
          IndexedEvalCounters& counters) {
        ExecContext unbounded;
        (void)(log_space
                   ? SubspaceLogDensity(x, dims, unbounded,
                                        ScratchArena::ThreadLocal(), index,
                                        &counters)
                   : SubspaceDensity(x, dims, unbounded,
                                     ScratchArena::ThreadLocal(), index,
                                     &counters));
      });
  const size_t tile = index != nullptr ? 1 : dense_tile;
  Result<EvalResult> result = kde_internal::BatchEvaluateTiles(
      request, num_dims_, num_points_, tile, "error_kde.eval_batch",
      [this, log_space, index, &count_tile](
          std::span<const double> points, size_t count,
          std::span<const size_t> dims, ExecContext& ctx,
          ScratchArena& scratch, double* out) -> Status {
        IndexedEvalCounters counters;
        if (index == nullptr) {
          const Status status = EvalTileDense(points, count, dims, log_space,
                                              ctx, scratch, out, &counters);
          count_tile(counters);
          return status;
        }
        for (size_t q = 0; q < count; ++q) {
          const std::span<const double> x =
              points.subspan(q * num_dims_, num_dims_);
          const Result<double> density =
              log_space
                  ? SubspaceLogDensity(x, dims, ctx, scratch, index,
                                       &counters)
                  : SubspaceDensity(x, dims, ctx, scratch, index, &counters);
          if (!density.ok()) {
            count_tile(counters);
            return density.status();
          }
          out[q] = density.value();
        }
        count_tile(counters);
        return Status::OK();
      });
  if (result.ok()) {
    result.value().stats.pruned_terms =
        pruned_total.load(std::memory_order_relaxed);
    result.value().stats.cells_visited =
        cells_visited_total.load(std::memory_order_relaxed);
    result.value().stats.cells_pruned =
        cells_pruned_total.load(std::memory_order_relaxed);
    result.value().stats.simd = simd_->level;
  }
  return result;
}

void ErrorKernelDensity::SweepTerms(std::span<const double> x,
                                    std::span<const size_t> dims, size_t first,
                                    size_t len, double* terms) const {
  std::fill_n(terms, len, 0.0);
  for (size_t dim : dims) {
    UDM_DCHECK(dim < num_dims_);
    simd_->sweep(x[dim], table_.ValuesCol(dim) + first,
                 table_.NegInvTwoVarCol(dim) + first,
                 table_.LogNormCol(dim) + first, terms, len);
  }
}

Status ErrorKernelDensity::EvalTileDense(
    std::span<const double> points, size_t count, std::span<const size_t> dims,
    bool log_space, ExecContext& ctx, ScratchArena& scratch, double* out,
    IndexedEvalCounters* counters) const {
  UDM_TRACE_SPAN(log_space ? "error_kde.log_eval_tile" : "error_kde.eval_tile");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  std::span<double> log_terms =
      scratch.Doubles(ScratchArena::kLogTerms, count * num_points_);
  double max_term[kde_internal::kMaxQueryTile];
  std::fill_n(max_term, count, -std::numeric_limits<double>::infinity());
  // Panel loop: chunk-outer, query-inner — every query in the tile sweeps
  // the same kEvalChunk panel of the three column streams while it is
  // cache-resident. Each query's own chunk sequence (and so its bits) is
  // exactly the per-point path's.
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size() * count);
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size() * count);
    for (size_t q = 0; q < count; ++q) {
      double* terms = log_terms.data() + q * num_points_ + start;
      SweepTerms(points.subspan(q * num_dims_, num_dims_), dims, start, len,
                 terms);
      for (size_t i = 0; i < len; ++i) {
        max_term[q] = std::max(max_term[q], terms[i]);
      }
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  const double log_n = std::log(static_cast<double>(num_points_));
  for (size_t q = 0; q < count; ++q) {
    if (!std::isfinite(max_term[q])) {
      out[q] = log_space ? -std::numeric_limits<double>::infinity() : 0.0;
      continue;
    }
    ExpSumState state;
    simd_->pruned_exp_accum(log_terms.data() + q * num_points_, num_points_,
                            max_term[q], log_space ? max_term[q] : 0.0,
                            log_prune_threshold_, state);
    if (state.pruned != 0) {
      PrunedTermsCounter().Increment(state.pruned);
      if (counters != nullptr) counters->pruned_terms += state.pruned;
    }
    out[q] = log_space
                 ? max_term[q] + std::log(state.Total()) - log_n
                 : state.Total() / static_cast<double>(num_points_);
  }
  return Status::OK();
}

Result<double> ErrorKernelDensity::SubspaceDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, const SpatialIndex* index,
    IndexedEvalCounters* counters) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("error_kde.eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  if (index != nullptr) {
    IndexedEvalCounters local;
    Result<double> total = IndexedPrunedSum(
        *index, x, dims, log_prune_threshold_, /*log_space=*/false, *simd_,
        ctx, scratch,
        [&](size_t first, size_t len, double* terms) {
          SweepTerms(x, dims, first, len, terms);
        },
        local);
    CountIndexedCells(local, counters);
    if (!total.ok()) return total.status();
    if (local.pruned_terms != 0) {
      PrunedTermsCounter().Increment(local.pruned_terms);
    }
    return total.value() / static_cast<double>(num_points_);
  }
  // Same two-pass pruned sum as SubspaceLogDensity, accumulated in linear
  // space (PrunedLinearSum): the shared gap test is what makes the indexed
  // path's cell skips bit-identical here too.
  std::span<double> log_terms =
      scratch.Doubles(ScratchArena::kLogTerms, num_points_);
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size());
    double* terms = log_terms.data() + start;
    SweepTerms(x, dims, start, len, terms);
    for (size_t i = 0; i < len; ++i) max_term = std::max(max_term, terms[i]);
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  if (!std::isfinite(max_term)) return 0.0;
  ExpSumState state;
  simd_->pruned_exp_accum(log_terms.data(), num_points_, max_term,
                          /*shift=*/0.0, log_prune_threshold_, state);
  if (state.pruned != 0) {
    PrunedTermsCounter().Increment(state.pruned);
    if (counters != nullptr) counters->pruned_terms += state.pruned;
  }
  return state.Total() / static_cast<double>(num_points_);
}

Result<double> ErrorKernelDensity::SubspaceLogDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, const SpatialIndex* index,
    IndexedEvalCounters* counters) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("LogEvaluateSubspace: point dimension");
  }
  UDM_TRACE_SPAN("error_kde.log_eval");
  EvalLatencyScope latency;
  UDM_RETURN_IF_ERROR(ctx.Check());
  if (index != nullptr) {
    IndexedEvalCounters local;
    Result<double> log_sum = IndexedPrunedSum(
        *index, x, dims, log_prune_threshold_, /*log_space=*/true, *simd_,
        ctx, scratch,
        [&](size_t first, size_t len, double* terms) {
          SweepTerms(x, dims, first, len, terms);
        },
        local);
    CountIndexedCells(local, counters);
    if (!log_sum.ok()) return log_sum.status();
    if (local.pruned_terms != 0) {
      PrunedTermsCounter().Increment(local.pruned_terms);
    }
    return log_sum.value() - std::log(static_cast<double>(num_points_));
  }
  // Pass 1: materialize every log-term via the column-major sweeps and
  // find the exact maximum. Pass 2 (PrunedLogSumExp) accumulates
  // exp(term - max), skipping terms the pruning gap proves negligible.
  std::span<double> log_terms =
      scratch.Doubles(ScratchArena::kLogTerms, num_points_);
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t start = 0; start < num_points_; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, num_points_);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size());
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size());
    double* terms = log_terms.data() + start;
    SweepTerms(x, dims, start, len, terms);
    for (size_t i = 0; i < len; ++i) max_term = std::max(max_term, terms[i]);
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  ExpSumState state;
  simd_->pruned_exp_accum(log_terms.data(), num_points_, max_term,
                          /*shift=*/max_term, log_prune_threshold_, state);
  if (state.pruned != 0) {
    PrunedTermsCounter().Increment(state.pruned);
    if (counters != nullptr) counters->pruned_terms += state.pruned;
  }
  return max_term + std::log(state.Total()) -
         std::log(static_cast<double>(num_points_));
}

}  // namespace udm
