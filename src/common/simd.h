#ifndef UDM_COMMON_SIMD_H_
#define UDM_COMMON_SIMD_H_

/// Runtime SIMD capability detection and the knobs that steer the explicit
/// kernel dispatch (DESIGN.md §4k). The actual vector kernels live in
/// kde/simd_sweep.{h,cc}; this header is dependency-light so tools and
/// benches can ask "what will run here?" without linking the density
/// engine.
///
/// Levels are strictly ordered: every level ≥ kAvx2 requires FMA, and a
/// request above what the host supports clamps down (never up), so a
/// binary built anywhere runs anywhere — the ISA choice is a pure runtime
/// decision, never a compile-flag requirement.

#include <cstdio>
#include <cstdlib>
#include <new>
#include <string_view>
#include <vector>

namespace udm {

/// Resolved execution level of the kernel dispatch. kScalar is the
/// portable reference path every vector path is tested against.
enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,    // 4×double lanes, explicit FMA
  kAvx512 = 2,  // 8×double lanes, explicit FMA, mask registers
};

/// What a caller (option or UDM_SIMD env var) asked for. kOff and kScalar
/// both run the portable scalar kernels — kOff exists so operators can say
/// "no SIMD layer" without knowing the level taxonomy; both report as
/// "scalar" once resolved.
enum class SimdRequest {
  kAuto = 0,  // best level the CPU supports (the default)
  kOff = 1,
  kScalar = 2,
  kAvx2 = 3,
  kAvx512 = 4,
};

inline const char* SimdLevelName(SimdLevel level) {
  switch (level) {
    case SimdLevel::kScalar:
      return "scalar";
    case SimdLevel::kAvx2:
      return "avx2";
    case SimdLevel::kAvx512:
      return "avx512";
  }
  return "scalar";
}

/// Parses a UDM_SIMD-style value. Returns false (leaving *request alone)
/// on anything unrecognized.
inline bool ParseSimdRequest(std::string_view text, SimdRequest* request) {
  if (text == "auto") {
    *request = SimdRequest::kAuto;
  } else if (text == "off") {
    *request = SimdRequest::kOff;
  } else if (text == "scalar") {
    *request = SimdRequest::kScalar;
  } else if (text == "avx2") {
    *request = SimdRequest::kAvx2;
  } else if (text == "avx512") {
    *request = SimdRequest::kAvx512;
  } else {
    return false;
  }
  return true;
}

/// CPUID probe: the best level this host can execute. Non-x86 builds (and
/// compilers without __builtin_cpu_supports) are scalar-only.
inline SimdLevel DetectBestSimdLevel() {
#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
  if (__builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq")) {
    return SimdLevel::kAvx512;
  }
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdLevel::kAvx2;
  }
#endif
  return SimdLevel::kScalar;
}

/// Clamps a request to what the host supports: kAuto takes the best
/// detected level, an explicit vector level degrades to the next
/// supported one (never silently upgrades).
inline SimdLevel ResolveSimdRequest(SimdRequest request) {
  const SimdLevel best = DetectBestSimdLevel();
  switch (request) {
    case SimdRequest::kAuto:
      return best;
    case SimdRequest::kOff:
    case SimdRequest::kScalar:
      return SimdLevel::kScalar;
    case SimdRequest::kAvx2:
      return best >= SimdLevel::kAvx2 ? SimdLevel::kAvx2 : SimdLevel::kScalar;
    case SimdRequest::kAvx512:
      return best >= SimdLevel::kAvx512 ? SimdLevel::kAvx512 : best;
  }
  return SimdLevel::kScalar;
}

/// The process-wide dispatch level: UDM_SIMD=avx512|avx2|scalar|off|auto
/// when set (and valid), else the CPUID best. Read once and cached — the
/// dispatch is selected at startup, not per call — so tests that force a
/// level must do it via the environment before first use, or per model
/// via DensityEvalOptions::simd.
inline SimdLevel ProcessSimdLevel() {
  static const SimdLevel level = [] {
    SimdRequest request = SimdRequest::kAuto;
    const char* env = std::getenv("UDM_SIMD");
    if (env != nullptr && *env != '\0' && !ParseSimdRequest(env, &request)) {
      std::fprintf(stderr,
                   "udm: ignoring unrecognized UDM_SIMD='%s' "
                   "(want avx512|avx2|scalar|off|auto)\n",
                   env);
    }
    return ResolveSimdRequest(request);
  }();
  return level;
}

/// What a model fitted with `request` actually runs: kAuto defers to the
/// process default (UDM_SIMD env var, else CPUID best); explicit requests
/// clamp to the host.
inline SimdLevel EffectiveSimdLevel(SimdRequest request) {
  return request == SimdRequest::kAuto ? ProcessSimdLevel()
                                       : ResolveSimdRequest(request);
}

/// Cache-line / vector-register alignment for the kernel hot-path
/// allocations (ErrorKernelTable columns, ScratchArena buffers): one
/// 64-byte line covers a full AVX-512 register, so a vector load at the
/// buffer base never splits a line.
inline constexpr size_t kSimdAlignment = 64;

inline bool IsSimdAligned(const void* p) {
  return (reinterpret_cast<uintptr_t>(p) % kSimdAlignment) == 0;
}

/// Minimal over-aligning allocator for the hot-path std::vectors. Stateless,
/// so vectors with it swap/move exactly like plain ones.
template <typename T, size_t Alignment = kSimdAlignment>
class AlignedAllocator {
 public:
  static_assert((Alignment & (Alignment - 1)) == 0, "power-of-two alignment");
  static_assert(Alignment >= alignof(T), "alignment must not weaken T's");
  using value_type = T;
  using is_always_equal = std::true_type;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Alignment)));
  }
  void deallocate(T* p, size_t /*n*/) noexcept {
    ::operator delete(p, std::align_val_t(Alignment));
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// 64-byte-aligned double vector used by the kernel tables and arenas.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

}  // namespace udm

#endif  // UDM_COMMON_SIMD_H_
