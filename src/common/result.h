#ifndef UDM_COMMON_RESULT_H_
#define UDM_COMMON_RESULT_H_

#include <utility>
#include <variant>

#include "common/logging.h"
#include "common/status.h"

namespace udm {

/// Either a value of type `T` or a non-OK `Status` explaining why the value
/// could not be produced. The udm analogue of `arrow::Result` /
/// `absl::StatusOr`.
///
/// Usage:
/// ```
/// Result<Dataset> r = Dataset::FromCsv(path);
/// if (!r.ok()) return r.status();
/// Dataset d = std::move(r).value();
/// ```
/// or, inside a function that itself returns Status/Result:
/// ```
/// UDM_ASSIGN_OR_RETURN(Dataset d, Dataset::FromCsv(path));
/// ```
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Constructs from a value (implicit so `return value;` works).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Constructs from a non-OK status (implicit so `return status;` works).
  /// Constructing from an OK status is a programming error.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(runtime/explicit)
    UDM_CHECK(!std::get<Status>(rep_).ok())
        << "Result<T> must not be constructed from an OK status";
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  /// True iff a value is held.
  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The status: OK when a value is held, the error otherwise.
  Status status() const& {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// Accessors for the held value. It is a checked error to call these on a
  /// non-OK result.
  const T& value() const& {
    UDM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T& value() & {
    UDM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(rep_);
  }
  T&& value() && {
    UDM_CHECK(ok()) << "Result::value() on error: " << status().ToString();
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  T&& operator*() && { return std::move(*this).value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `fallback` if this result holds an error.
  T value_or(T fallback) const& { return ok() ? value() : std::move(fallback); }

 private:
  std::variant<Status, T> rep_;
};

}  // namespace udm

#define UDM_RESULT_CONCAT_INNER_(a, b) a##b
#define UDM_RESULT_CONCAT_(a, b) UDM_RESULT_CONCAT_INNER_(a, b)

/// Evaluates `rexpr` (a Result<T>); on error returns the status from the
/// enclosing function, otherwise moves the value into `lhs`.
#define UDM_ASSIGN_OR_RETURN(lhs, rexpr)                                   \
  auto UDM_RESULT_CONCAT_(_udm_result_, __LINE__) = (rexpr);               \
  if (!UDM_RESULT_CONCAT_(_udm_result_, __LINE__).ok())                    \
    return UDM_RESULT_CONCAT_(_udm_result_, __LINE__).status();            \
  lhs = std::move(UDM_RESULT_CONCAT_(_udm_result_, __LINE__)).value()

#endif  // UDM_COMMON_RESULT_H_
