#ifndef UDM_COMMON_LOGGING_H_
#define UDM_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace udm {

/// Severity levels for the lightweight logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal {

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Accumulates one log statement and emits it (to stderr) on destruction.
/// The full line — prefix, message, suppression note, newline — is built
/// first and written with a single fwrite, so concurrent log statements
/// never interleave mid-line. Fatal messages abort the process after
/// emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

  /// Appends " (suppressed N)" to the emitted line when N > 0. Used by
  /// UDM_LOG_RATE_LIMITED to account for the statements the rate limiter
  /// dropped since the previous admitted one.
  LogMessage& WithSuppressed(uint64_t count) {
    suppressed_ = count;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  uint64_t suppressed_ = 0;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement with zero evaluation of the stream.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Rate limiter behind UDM_LOG_RATE_LIMITED: returns true when no message
/// for `key` has been admitted in the last `interval_seconds` (and records
/// the admission). On an admission, `*suppressed_out` (when non-null)
/// receives the number of statements dropped for `key` since the previous
/// admission. Thread-safe; monotonic clock.
bool RateLimitAllow(const std::string& key, double interval_seconds,
                    uint64_t* suppressed_out = nullptr);

/// Total log statements dropped by the rate limiter across all keys for
/// the process lifetime (exported as the `log.rate_limited.suppressed`
/// metric; survives per-key resets on admission).
uint64_t TotalRateLimitSuppressed();

/// Clears all rate-limiter state (test isolation).
void ResetRateLimitForTest();

/// Forgets the admission time for one key so the next statement is
/// admitted immediately, without clearing suppression counts (lets tests
/// observe the "(suppressed N)" emission deterministically).
void ExpireRateLimitForTest(const std::string& key);

}  // namespace internal

/// Sets the process-wide minimum log level (default kInfo).
inline void SetLogLevel(LogLevel level) { internal::SetMinLogLevel(level); }

}  // namespace udm

#define UDM_LOG(level)                                              \
  ::udm::internal::LogMessage(::udm::LogLevel::k##level, __FILE__, __LINE__)

/// Emits at most one message per `key` per `interval_seconds`; suppressed
/// statements evaluate nothing. Use for warnings that a fault storm could
/// otherwise repeat thousands of times per second (quarantined records,
/// repeated repairs): the first occurrence is visible, the storm is not.
/// The next admitted message carries a " (suppressed N)" suffix counting
/// the statements dropped in between.
#define UDM_LOG_RATE_LIMITED(level, key, interval_seconds)               \
  if (uint64_t udm_log_suppressed_count = 0;                             \
      ::udm::internal::RateLimitAllow((key), (interval_seconds),         \
                                      &udm_log_suppressed_count))        \
  UDM_LOG(level).WithSuppressed(udm_log_suppressed_count)

/// Always-on invariant check; logs and aborts on failure. Streams extra
/// context: `UDM_CHECK(n > 0) << "empty dataset";`
#define UDM_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::udm::internal::LogMessage(::udm::LogLevel::kFatal, __FILE__,         \
                              __LINE__)                                  \
      << "Check failed: " #condition " "

#ifdef NDEBUG
#define UDM_DCHECK(condition) \
  if (false) ::udm::internal::NullStream()
#else
/// Debug-only invariant check (compiled out under NDEBUG).
#define UDM_DCHECK(condition) UDM_CHECK(condition)
#endif

#endif  // UDM_COMMON_LOGGING_H_
