#ifndef UDM_COMMON_LOGGING_H_
#define UDM_COMMON_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace udm {

/// Severity levels for the lightweight logger.
enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kFatal = 4,
};

namespace internal {

/// Process-wide minimum level; messages below it are dropped.
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// Accumulates one log statement and emits it (to stderr) on destruction.
/// Fatal messages abort the process after emission.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream stream_;
};

/// Swallows a disabled log statement with zero evaluation of the stream.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// Rate limiter behind UDM_LOG_RATE_LIMITED: returns true when no message
/// for `key` has been admitted in the last `interval_seconds` (and records
/// the admission). Thread-safe; monotonic clock.
bool RateLimitAllow(const std::string& key, double interval_seconds);

/// Clears all rate-limiter state (test isolation).
void ResetRateLimitForTest();

}  // namespace internal

/// Sets the process-wide minimum log level (default kInfo).
inline void SetLogLevel(LogLevel level) { internal::SetMinLogLevel(level); }

}  // namespace udm

#define UDM_LOG(level)                                              \
  ::udm::internal::LogMessage(::udm::LogLevel::k##level, __FILE__, __LINE__)

/// Emits at most one message per `key` per `interval_seconds`; suppressed
/// statements evaluate nothing. Use for warnings that a fault storm could
/// otherwise repeat thousands of times per second (quarantined records,
/// repeated repairs): the first occurrence is visible, the storm is not.
#define UDM_LOG_RATE_LIMITED(level, key, interval_seconds)          \
  if (::udm::internal::RateLimitAllow((key), (interval_seconds)))   \
  UDM_LOG(level)

/// Always-on invariant check; logs and aborts on failure. Streams extra
/// context: `UDM_CHECK(n > 0) << "empty dataset";`
#define UDM_CHECK(condition)                                             \
  if (!(condition))                                                      \
  ::udm::internal::LogMessage(::udm::LogLevel::kFatal, __FILE__,         \
                              __LINE__)                                  \
      << "Check failed: " #condition " "

#ifdef NDEBUG
#define UDM_DCHECK(condition) \
  if (false) ::udm::internal::NullStream()
#else
/// Debug-only invariant check (compiled out under NDEBUG).
#define UDM_DCHECK(condition) UDM_CHECK(condition)
#endif

#endif  // UDM_COMMON_LOGGING_H_
