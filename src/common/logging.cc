#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <unordered_map>

namespace udm {
namespace internal {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

/// Lifetime total of rate-limited drops; monotone even across per-key
/// admissions and test resets of the admission times.
std::atomic<uint64_t> g_total_suppressed{0};

struct RateLimitEntry {
  std::chrono::steady_clock::time_point last_admitted;
  uint64_t suppressed_since_admitted = 0;
};

std::mutex g_rate_limit_mutex;
std::unordered_map<std::string, RateLimitEntry>& RateLimitMap() {
  static auto* map = new std::unordered_map<std::string, RateLimitEntry>();
  return *map;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

bool RateLimitAllow(const std::string& key, double interval_seconds,
                    uint64_t* suppressed_out) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(g_rate_limit_mutex);
  auto& map = RateLimitMap();
  const auto it = map.find(key);
  if (it != map.end() &&
      std::chrono::duration<double>(now - it->second.last_admitted).count() <
          interval_seconds) {
    ++it->second.suppressed_since_admitted;
    g_total_suppressed.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  uint64_t suppressed = 0;
  if (it != map.end()) {
    suppressed = it->second.suppressed_since_admitted;
    it->second.last_admitted = now;
    it->second.suppressed_since_admitted = 0;
  } else {
    map.emplace(key, RateLimitEntry{now, 0});
  }
  if (suppressed_out != nullptr) *suppressed_out = suppressed;
  return true;
}

uint64_t TotalRateLimitSuppressed() {
  return g_total_suppressed.load(std::memory_order_relaxed);
}

void ResetRateLimitForTest() {
  std::lock_guard<std::mutex> lock(g_rate_limit_mutex);
  RateLimitMap().clear();
}

void ExpireRateLimitForTest(const std::string& key) {
  std::lock_guard<std::mutex> lock(g_rate_limit_mutex);
  auto& map = RateLimitMap();
  const auto it = map.find(key);
  if (it == map.end()) return;
  // Rewind the admission far enough that any positive interval has lapsed.
  it->second.last_admitted =
      std::chrono::steady_clock::now() - std::chrono::hours(24 * 365);
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= GetMinLogLevel() || level == LogLevel::kFatal) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    if (suppressed_ > 0) stream_ << " (suppressed " << suppressed_ << ")";
    stream_ << "\n";
    const std::string line = stream_.str();
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace udm
