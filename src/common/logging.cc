#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <unordered_map>

namespace udm {
namespace internal {

namespace {
std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};

std::mutex g_rate_limit_mutex;
std::unordered_map<std::string, std::chrono::steady_clock::time_point>&
RateLimitMap() {
  static auto* map = new std::unordered_map<
      std::string, std::chrono::steady_clock::time_point>();
  return *map;
}

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

bool RateLimitAllow(const std::string& key, double interval_seconds) {
  const auto now = std::chrono::steady_clock::now();
  std::lock_guard<std::mutex> lock(g_rate_limit_mutex);
  auto& map = RateLimitMap();
  const auto it = map.find(key);
  if (it != map.end() &&
      std::chrono::duration<double>(now - it->second).count() <
          interval_seconds) {
    return false;
  }
  map[key] = now;
  return true;
}

void ResetRateLimitForTest() {
  std::lock_guard<std::mutex> lock(g_rate_limit_mutex);
  RateLimitMap().clear();
}

LogLevel GetMinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level),
      enabled_(level >= GetMinLogLevel() || level == LogLevel::kFatal) {
  if (enabled_) {
    // Keep only the basename to keep lines short.
    const char* base = file;
    for (const char* p = file; *p != '\0'; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    stream_ << "\n";
    std::cerr << stream_.str();
    std::cerr.flush();
  }
  if (level_ == LogLevel::kFatal) std::abort();
}

}  // namespace internal
}  // namespace udm
