#ifndef UDM_COMMON_PARALLEL_H_
#define UDM_COMMON_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/status.h"

namespace udm {

namespace obs {
class Gauge;
}  // namespace obs

/// Fixed-size pool of worker threads draining a FIFO task queue. One
/// process-wide pool (Shared()) backs every ParallelFor; private pools are
/// for tests. Queue depth is exported as the gauge `<name>.queue_depth`.
///
/// The pool never owns the work decomposition — ParallelFor submits
/// self-scheduling drain loops, so a task that runs late (or never, under
/// pool saturation) is harmless: the calling thread always participates
/// and can finish the whole range alone.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (at least 1). `name` prefixes the
  /// queue-depth gauge.
  explicit ThreadPool(size_t num_threads, std::string name = "parallel");
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` for execution on some worker. Tasks submitted after
  /// destruction has begun are dropped.
  void Submit(std::function<void()> fn);

  size_t num_threads() const { return workers_.size(); }
  /// Tasks currently queued (not yet picked up by a worker).
  size_t QueueDepth() const;

  /// Process-wide pool, created on first use and never destroyed. Sized
  /// to HardwareThreads() so a ParallelFor at full width keeps every core
  /// busy while the calling thread participates.
  static ThreadPool& Shared();

  /// std::thread::hardware_concurrency(), clamped to at least 1.
  static size_t HardwareThreads();

 private:
  void WorkerLoop();

  const std::string name_;
  obs::Gauge* queue_depth_gauge_;  // registry-owned, process lifetime
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Controls one ParallelFor call.
struct ParallelForOptions {
  /// Worker width: 0 or 1 runs serially inline on the calling thread;
  /// N > 1 uses the calling thread plus N-1 helpers from ThreadPool::
  /// Shared(). Width never changes results — only wall-clock time.
  size_t threads = 0;
  /// Items per chunk (minimum scheduling unit). Chunk boundaries depend
  /// only on this value and the item count — never on `threads` — which
  /// is what makes results bit-identical across widths.
  size_t chunk_size = 1;
  /// Checked before every chunk; a failed Check() stops the loop with
  /// that status. Charge*() calls made by the body are atomic, so one
  /// context may be shared by all workers.
  ExecContext* ctx = nullptr;
};

/// Outcome of a ParallelFor. On failure, `status` is the status of the
/// lowest-indexed failing chunk (matching what a serial loop would have
/// reported) and `chunks_completed` counts the contiguous prefix of
/// chunks that ran to completion. Chunks past the prefix may also have
/// executed (they were claimed before the failure became visible);
/// callers consuming partial output should read only the prefix.
struct ParallelForResult {
  Status status = Status::OK();
  size_t num_chunks = 0;
  size_t chunks_completed = 0;
  /// Items in the completed prefix: chunks_completed * chunk_size,
  /// clamped to the total item count.
  size_t items_completed = 0;
  /// Resolved width (requested threads clamped to the chunk count).
  size_t threads_used = 1;

  bool ok() const { return status.ok(); }
};

/// Chunk body: process items [begin, end). `chunk_index` is the fixed
/// position of the chunk in the partition. Return a non-OK status to stop
/// the loop (remaining unclaimed chunks are skipped).
using ChunkBody =
    std::function<Status(size_t begin, size_t end, size_t chunk_index)>;

/// Runs `body` over [0, total) in fixed chunks of `options.chunk_size`,
/// on `options.threads` threads (see ParallelForOptions). The calling
/// thread always participates, so progress never depends on pool
/// capacity. Each executed chunk increments the `parallel.tasks` counter
/// and records its latency in the `parallel.chunk.seconds` histogram.
///
/// Determinism contract: the partition of items into chunks depends only
/// on `total` and `chunk_size`; each chunk processes its items in index
/// order on exactly one thread. A body whose per-item work is independent
/// of other items therefore produces bit-identical output at any width.
ParallelForResult ParallelFor(size_t total, const ParallelForOptions& options,
                              const ChunkBody& body);

}  // namespace udm

#endif  // UDM_COMMON_PARALLEL_H_
