#include "common/status.h"

namespace udm {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

Status Status::WithContext(std::string_view context) const {
  if (ok()) return *this;
  std::string msg(context);
  msg += ": ";
  msg += message();
  Status result;
  result.rep_.reset(new Rep{code(), std::move(msg)});
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace udm
