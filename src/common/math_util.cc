#include "common/math_util.h"

#include "common/logging.h"

namespace udm {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  KahanSum sum;
  for (double v : values) sum.Add(v);
  return sum.Total() / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 1) return 0.0;
  const double mu = Mean(values);
  KahanSum sum;
  for (double v : values) sum.Add((v - mu) * (v - mu));
  return sum.Total() / static_cast<double>(values.size());
}

double StdDev(std::span<const double> values) {
  return std::sqrt(Variance(values));
}

double SampleVariance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mu = Mean(values);
  KahanSum sum;
  for (double v : values) sum.Add((v - mu) * (v - mu));
  return sum.Total() / static_cast<double>(values.size() - 1);
}

double SquaredEuclidean(std::span<const double> a, std::span<const double> b) {
  UDM_DCHECK(a.size() == b.size()) << "dimension mismatch";
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

double Euclidean(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

std::vector<double> Linspace(double lo, double hi, size_t count) {
  UDM_CHECK(count >= 2) << "Linspace needs at least two points";
  std::vector<double> out(count);
  const double step = (hi - lo) / static_cast<double>(count - 1);
  for (size_t i = 0; i < count; ++i) {
    out[i] = lo + step * static_cast<double>(i);
  }
  out.back() = hi;  // avoid accumulated rounding on the endpoint
  return out;
}

}  // namespace udm
