#ifndef UDM_COMMON_SCRATCH_H_
#define UDM_COMMON_SCRATCH_H_

#include <array>
#include <cstddef>
#include <span>

#include "common/logging.h"
#include "common/simd.h"

namespace udm {

/// Reusable per-thread scratch buffers for the density hot paths.
///
/// Every density evaluation needs short-lived working memory (a
/// `log_terms` vector per log-sum-exp query, a per-chunk `log_product`
/// accumulator). Allocating these per call puts malloc/free on the hot
/// path and defeats the column-major kernel sweeps, so evaluators borrow
/// buffers from an arena instead. The batch engine (kde/batch_eval.h)
/// hands each worker the arena of its own thread, and the single-point
/// entry points use ThreadLocal() directly — so no synchronization is
/// needed and a buffer stays warm in cache across the queries one thread
/// processes back to back.
///
/// Buffers are identified by slot index; a caller may hold several slots
/// at once (e.g. kLogTerms for the full-model term vector while kProducts
/// accumulates a chunk). Borrowing the same slot twice in one call frame
/// would alias, so slots are named rather than pooled.
///
/// All buffers are 64-byte aligned (common/simd.h) so the explicit SIMD
/// sweeps and the vectorized exp pass start on a full cache line.
class ScratchArena {
 public:
  /// Slot conventions used by the density evaluators. The arena itself is
  /// agnostic — any caller may use any slot, as long as it does not hold
  /// two aliases of the same slot at once.
  enum Slot : size_t {
    /// Per-summand log-kernel terms (log-sum-exp pass 1).
    kLogTerms = 0,
    /// Per-point product / log-product accumulator for one chunk.
    kProducts = 1,
    /// Per-cell best-case contribution bounds (spatial index).
    kCellBounds = 2,
    /// Per-cell visited markers (spatial index pass 2; 0.0 / 1.0).
    kCellFlags = 3,
    kNumSlots = 4,
  };

  /// Returns slot `slot` resized to exactly `n` doubles. Contents are
  /// stale (whatever the previous borrower left); callers must initialize
  /// the range they read. Capacity is retained across calls, so steady
  /// state performs no allocation.
  std::span<double> Doubles(size_t slot, size_t n) {
    AlignedVector<double>& buffer = buffers_[slot];
    if (buffer.size() < n) buffer.resize(n);
    UDM_DCHECK(n == 0 || IsSimdAligned(buffer.data()));
    return std::span<double>(buffer.data(), n);
  }

  /// The calling thread's arena.
  static ScratchArena& ThreadLocal() {
    thread_local ScratchArena arena;
    return arena;
  }

 private:
  std::array<AlignedVector<double>, kNumSlots> buffers_;
};

}  // namespace udm

#endif  // UDM_COMMON_SCRATCH_H_
