#ifndef UDM_COMMON_STATUS_H_
#define UDM_COMMON_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace udm {

/// Machine-readable category of a failure. Mirrors the conventions used by
/// Arrow / RocksDB / absl: a small closed enum, with the human-readable
/// detail carried in the message.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kFailedPrecondition = 5,
  kUnimplemented = 6,
  kIoError = 7,
  kInternal = 8,
  kCancelled = 9,
  kDeadlineExceeded = 10,
  kResourceExhausted = 11,
};

/// Returns a stable, human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Outcome of an operation that can fail.
///
/// `Status` is cheap to pass around: the OK state is represented by a null
/// pointer, so success costs one word and no allocation. Construct error
/// statuses through the named factories (`Status::InvalidArgument(...)`).
///
/// Functions in `udm` that can fail return `Status` (or `Result<T>`, see
/// result.h) instead of throwing; exceptions never cross the public API.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(const Status& other) : rep_(other.rep_ ? new Rep(*other.rep_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) rep_.reset(other.rep_ ? new Rep(*other.rep_) : nullptr);
    return *this;
  }
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  /// Named factories, one per error code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return rep_ == nullptr; }

  /// The code; `kOk` for success.
  StatusCode code() const { return rep_ ? rep_->code : StatusCode::kOk; }

  /// The detail message; empty for success.
  const std::string& message() const {
    static const std::string kEmpty;
    return rep_ ? rep_->message : kEmpty;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Returns a copy of this status with `context` prepended to the message.
  /// OK statuses are returned unchanged.
  Status WithContext(std::string_view context) const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }

 private:
  struct Rep {
    StatusCode code;
    std::string message;
  };

  Status(StatusCode code, std::string msg)
      : rep_(new Rep{code, std::move(msg)}) {}

  std::unique_ptr<Rep> rep_;  // null <=> OK
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace udm

/// Propagates a non-OK status to the caller.
#define UDM_RETURN_IF_ERROR(expr)                 \
  do {                                            \
    ::udm::Status _udm_status = (expr);           \
    if (!_udm_status.ok()) return _udm_status;    \
  } while (false)

#endif  // UDM_COMMON_STATUS_H_
