#ifndef UDM_COMMON_DEADLINE_H_
#define UDM_COMMON_DEADLINE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <memory>

namespace udm {

/// A point in monotonic time by which an operation should be done. The
/// default-constructed deadline is infinite (never expires), so existing
/// call sites pay nothing for the feature.
///
/// Deadlines compose by copying: a caller hands the same Deadline to every
/// sub-operation, and each one checks `Expired()` at its own cadence
/// (ExecContext::Check centralizes this together with cancellation and
/// budget accounting).
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Infinite deadline: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now. Non-positive values are already
  /// expired.
  static Deadline AfterMillis(int64_t ms) {
    return AfterDuration(std::chrono::milliseconds(ms));
  }

  /// Expires `seconds` (fractional) from now.
  static Deadline AfterSeconds(double seconds) {
    return AfterDuration(std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds)));
  }

  /// Expires at the given monotonic time point.
  static Deadline At(Clock::time_point at) {
    Deadline d;
    d.infinite_ = false;
    d.at_ = at;
    return d;
  }

  static Deadline AfterDuration(Clock::duration duration) {
    return At(Clock::now() + duration);
  }

  bool is_infinite() const { return infinite_; }

  /// True once the deadline has passed. Infinite deadlines never expire.
  bool Expired() const { return !infinite_ && Clock::now() >= at_; }

  /// Seconds until expiry: negative once expired, +infinity when infinite.
  double RemainingSeconds() const {
    if (infinite_) return std::numeric_limits<double>::infinity();
    return std::chrono::duration<double>(at_ - Clock::now()).count();
  }

 private:
  bool infinite_ = true;
  Clock::time_point at_{};
};

class CancellationSource;

/// Read side of a cancellation flag. Cheap to copy; a default-constructed
/// token is never cancelled (the "nobody can cancel me" case). Obtain live
/// tokens from a CancellationSource.
class CancellationToken {
 public:
  CancellationToken() = default;

  bool IsCancelled() const {
    return state_ != nullptr && state_->load(std::memory_order_acquire);
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<const std::atomic<bool>> state_;
};

/// Write side of a cancellation flag: the owner (a request handler, a
/// driver loop) calls Cancel() and every operation holding a token from
/// this source observes it at its next cooperative check. Thread-safe;
/// cancellation is sticky (there is deliberately no reset — make a new
/// source for the next request).
class CancellationSource {
 public:
  CancellationSource() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() { state_->store(true, std::memory_order_release); }

  bool IsCancelled() const { return state_->load(std::memory_order_acquire); }

  CancellationToken token() const { return CancellationToken(state_); }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

}  // namespace udm

#endif  // UDM_COMMON_DEADLINE_H_
