#ifndef UDM_COMMON_STOPWATCH_H_
#define UDM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>
#include <ctime>

namespace udm {

/// Monotonic wall-clock stopwatch used by the experiment harnesses to report
/// per-example training/testing times (paper §4, Figures 8-11).
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch() : start_(Clock::now()), split_(start_) {}

  /// Resets the origin (and the lap marker) to now.
  void Restart() {
    start_ = Clock::now();
    split_ = start_;
    start_cpu_ = ProcessCpuSeconds();
  }

  /// Elapsed time since construction / last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

  /// Lap timer: seconds since the previous SplitSeconds() call (or since
  /// construction / Restart() for the first lap), advancing the lap marker.
  /// ElapsedSeconds() is unaffected.
  double SplitSeconds() {
    const Clock::time_point now = Clock::now();
    const double lap = std::chrono::duration<double>(now - split_).count();
    split_ = now;
    return lap;
  }

  /// CPU time this process has consumed since construction / Restart().
  /// Counts all threads, so it can exceed ElapsedSeconds() on parallel code.
  double ElapsedCpuSeconds() const {
    return ProcessCpuSeconds() - start_cpu_;
  }

  /// Total CPU time consumed by this process so far, in seconds.
  /// CLOCK_PROCESS_CPUTIME_ID where available, std::clock() otherwise.
  static double ProcessCpuSeconds() {
#if defined(CLOCK_PROCESS_CPUTIME_ID)
    timespec ts;
    if (clock_gettime(CLOCK_PROCESS_CPUTIME_ID, &ts) == 0) {
      return static_cast<double>(ts.tv_sec) +
             static_cast<double>(ts.tv_nsec) * 1e-9;
    }
#endif
    return static_cast<double>(std::clock()) /
           static_cast<double>(CLOCKS_PER_SEC);
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
  Clock::time_point split_;
  double start_cpu_ = ProcessCpuSeconds();
};

}  // namespace udm

#endif  // UDM_COMMON_STOPWATCH_H_
