#ifndef UDM_COMMON_STOPWATCH_H_
#define UDM_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace udm {

/// Monotonic wall-clock stopwatch used by the experiment harnesses to report
/// per-example training/testing times (paper §4, Figures 8-11).
class Stopwatch {
 public:
  /// Starts (or restarts) the stopwatch.
  Stopwatch() : start_(Clock::now()) {}

  /// Resets the origin to now.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed time since construction / last Restart(), in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace udm

#endif  // UDM_COMMON_STOPWATCH_H_
