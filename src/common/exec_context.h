#ifndef UDM_COMMON_EXEC_CONTEXT_H_
#define UDM_COMMON_EXEC_CONTEXT_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>

#include "common/deadline.h"
#include "common/status.h"

namespace udm {

/// Resource ceiling for one operation. Zero means unlimited, so the
/// default budget never trips. Kernel evaluations are the natural work
/// unit of this codebase (every density query is a sum of per-point,
/// per-dimension kernel terms); bytes cover ingestion and serialization
/// paths where the cost driver is data volume rather than math.
struct ExecBudget {
  uint64_t max_kernel_evals = 0;  ///< 0 = unlimited
  uint64_t max_bytes = 0;         ///< 0 = unlimited
};

/// Why a cooperative loop stopped. `kCompleted` is the natural end
/// (convergence, exhaustion of work); the others mark a partial result cut
/// short by the execution context. Carried inside result structs so a
/// caller can distinguish "done" from "best effort under the deadline".
enum class StopCause {
  kCompleted = 0,
  kDeadline,
  kBudget,
};

/// Returns "completed", "deadline", or "budget".
const char* StopCauseToString(StopCause cause);

/// The per-operation execution contract: a deadline, a cancellation token,
/// and a resource budget, plus the running spend against that budget.
///
/// Long-running loops call Check() at iteration/chunk boundaries and
/// Charge*() before doing a known amount of work; both return:
///   * kCancelled          — the token was cancelled (caller walked away);
///   * kDeadlineExceeded   — the deadline passed;
///   * kResourceExhausted  — a budget ceiling was hit.
/// Precedence is cancel > deadline > budget: a cancelled operation reports
/// kCancelled even if its deadline also lapsed.
///
/// The context is mutable state (spent counters) owned by one operation
/// and constructed per query/batch. Check() and Charge*() are thread-safe
/// (the spent counters are atomic), so one context can be shared by every
/// worker of a ParallelFor; precedence and stickiness are unaffected by
/// concurrent callers. A default-constructed context is unbounded and
/// never fails.
class ExecContext {
 public:
  ExecContext() = default;
  explicit ExecContext(Deadline deadline, CancellationToken cancel = {},
                       ExecBudget budget = {})
      : deadline_(deadline), cancel_(std::move(cancel)), budget_(budget) {}

  /// Cooperative check: OK, or the first violated constraint in
  /// cancel > deadline > budget order.
  Status Check() const;

  /// Records `n` kernel evaluations and fails with kResourceExhausted once
  /// the total exceeds the budget. The charge is recorded even when it
  /// overshoots, so spent counters reflect attempted work.
  Status ChargeKernelEvals(uint64_t n);

  /// Records `n` processed bytes against the byte budget.
  Status ChargeBytes(uint64_t n);

  const Deadline& deadline() const { return deadline_; }
  const CancellationToken& cancellation() const { return cancel_; }
  const ExecBudget& budget() const { return budget_; }

  uint64_t kernel_evals_spent() const {
    return kernel_evals_spent_.load(std::memory_order_relaxed);
  }
  uint64_t bytes_spent() const {
    return bytes_spent_.load(std::memory_order_relaxed);
  }

  /// Request identity for telemetry stitching. Set once by the operation's
  /// originator (e.g. the serving loop mints one per accepted frame) before
  /// the context is shared with workers; read-only afterwards, so plain
  /// string access is safe under the same publication that shares the
  /// context itself. Empty means "not part of a traced request".
  void set_trace_id(std::string id) { trace_id_ = std::move(id); }
  const std::string& trace_id() const { return trace_id_; }

 private:
  Status BudgetStatus(uint64_t kernel_evals, uint64_t bytes) const;

  Deadline deadline_;
  CancellationToken cancel_;
  ExecBudget budget_;
  std::string trace_id_;
  std::atomic<uint64_t> kernel_evals_spent_{0};
  std::atomic<uint64_t> bytes_spent_{0};
};

}  // namespace udm

#endif  // UDM_COMMON_EXEC_CONTEXT_H_
