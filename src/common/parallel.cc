#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <limits>
#include <memory>
#include <utility>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace udm {

namespace {

obs::Counter& TasksCounter() {
  static obs::Counter& counter =
      obs::MetricsRegistry::Global().GetCounter("parallel.tasks");
  return counter;
}

obs::Histogram& ChunkLatencyHistogram() {
  static obs::Histogram& histogram =
      obs::MetricsRegistry::Global().GetHistogram("parallel.chunk.seconds");
  return histogram;
}

constexpr size_t kNoFailure = std::numeric_limits<size_t>::max();

/// Shared state of one ParallelFor call. Held by shared_ptr so helper
/// tasks that fire after the call returned (all chunks already claimed)
/// find only an exhausted counter and exit without touching the body.
struct ParallelForState {
  size_t total = 0;
  size_t chunk_size = 1;
  size_t num_chunks = 0;
  const ChunkBody* body = nullptr;
  ExecContext* ctx = nullptr;

  std::atomic<size_t> next_chunk{0};
  /// Lowest failing chunk index observed so far (racy hint; the
  /// authoritative value lives under fail_mu). Chunks above it are
  /// skipped instead of executed.
  std::atomic<size_t> first_failed{kNoFailure};

  std::mutex fail_mu;
  size_t fail_index = kNoFailure;
  Status fail_status;

  std::mutex done_mu;
  std::condition_variable done_cv;
  size_t chunks_done = 0;

  void RecordFailure(size_t chunk, Status status) {
    {
      std::lock_guard<std::mutex> lock(fail_mu);
      if (chunk < fail_index) {
        fail_index = chunk;
        fail_status = std::move(status);
      }
    }
    size_t current = first_failed.load(std::memory_order_relaxed);
    while (chunk < current && !first_failed.compare_exchange_weak(
                                  current, chunk, std::memory_order_relaxed)) {
    }
  }

  /// Claims chunks until the range is exhausted. Run by the calling
  /// thread and by every helper task; the atomic claim counter hands each
  /// chunk to exactly one thread.
  void RunChunks() {
    for (;;) {
      const size_t chunk = next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= num_chunks) return;
      if (chunk < first_failed.load(std::memory_order_relaxed)) {
        Status status = ctx != nullptr ? ctx->Check() : Status::OK();
        if (status.ok()) {
          const Stopwatch timer;
          const size_t begin = chunk * chunk_size;
          const size_t end = std::min(begin + chunk_size, total);
          status = (*body)(begin, end, chunk);
          ChunkLatencyHistogram().Record(timer.ElapsedSeconds());
          TasksCounter().Increment();
        }
        if (!status.ok()) RecordFailure(chunk, std::move(status));
      }
      {
        std::lock_guard<std::mutex> lock(done_mu);
        ++chunks_done;
        if (chunks_done == num_chunks) done_cv.notify_all();
      }
    }
  }
};

ParallelForResult RunSerial(size_t total, size_t chunk_size,
                            ExecContext* ctx, const ChunkBody& body,
                            size_t num_chunks) {
  ParallelForResult result;
  result.num_chunks = num_chunks;
  for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
    Status status = ctx != nullptr ? ctx->Check() : Status::OK();
    if (status.ok()) {
      const Stopwatch timer;
      const size_t begin = chunk * chunk_size;
      const size_t end = std::min(begin + chunk_size, total);
      status = body(begin, end, chunk);
      ChunkLatencyHistogram().Record(timer.ElapsedSeconds());
      TasksCounter().Increment();
    }
    if (!status.ok()) {
      result.status = std::move(status);
      result.chunks_completed = chunk;
      result.items_completed = std::min(chunk * chunk_size, total);
      return result;
    }
  }
  result.chunks_completed = num_chunks;
  result.items_completed = total;
  return result;
}

}  // namespace

ThreadPool::ThreadPool(size_t num_threads, std::string name)
    : name_(std::move(name)),
      queue_depth_gauge_(&obs::MetricsRegistry::Global().GetGauge(
          name_ + ".queue_depth")) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) return;
    queue_.push_back(std::move(fn));
    queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
  }
  cv_.notify_one();
}

size_t ThreadPool::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      queue_depth_gauge_->Set(static_cast<double>(queue_.size()));
    }
    task();
  }
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: workers must outlive every static destructor that
  // could still submit work during process teardown.
  static ThreadPool* const pool = new ThreadPool(HardwareThreads());
  return *pool;
}

size_t ThreadPool::HardwareThreads() {
  return std::max(1u, std::thread::hardware_concurrency());
}

ParallelForResult ParallelFor(size_t total, const ParallelForOptions& options,
                              const ChunkBody& body) {
  const size_t chunk_size = std::max<size_t>(1, options.chunk_size);
  const size_t num_chunks = (total + chunk_size - 1) / chunk_size;
  if (num_chunks == 0) {
    ParallelForResult result;
    if (options.ctx != nullptr) result.status = options.ctx->Check();
    return result;
  }

  const size_t threads =
      std::min(std::max<size_t>(1, options.threads), num_chunks);
  if (threads <= 1) {
    return RunSerial(total, chunk_size, options.ctx, body, num_chunks);
  }

  auto state = std::make_shared<ParallelForState>();
  state->total = total;
  state->chunk_size = chunk_size;
  state->num_chunks = num_chunks;
  state->body = &body;
  state->ctx = options.ctx;

  ThreadPool& pool = ThreadPool::Shared();
  for (size_t i = 0; i + 1 < threads; ++i) {
    pool.Submit([state] { state->RunChunks(); });
  }
  state->RunChunks();
  {
    std::unique_lock<std::mutex> lock(state->done_mu);
    state->done_cv.wait(
        lock, [&] { return state->chunks_done == state->num_chunks; });
  }

  ParallelForResult result;
  result.num_chunks = num_chunks;
  result.threads_used = threads;
  {
    std::lock_guard<std::mutex> lock(state->fail_mu);
    if (state->fail_index == kNoFailure) {
      result.chunks_completed = num_chunks;
      result.items_completed = total;
    } else {
      result.status = state->fail_status;
      result.chunks_completed = state->fail_index;
      result.items_completed =
          std::min(state->fail_index * chunk_size, total);
    }
  }
  return result;
}

}  // namespace udm
