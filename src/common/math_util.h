#ifndef UDM_COMMON_MATH_UTIL_H_
#define UDM_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace udm {

/// Numerical constants used throughout the density machinery.
inline constexpr double kPi = 3.14159265358979323846;
inline constexpr double kSqrt2Pi = 2.50662827463100050242;  // sqrt(2*pi)
inline constexpr double kSqrt2 = 1.41421356237309504880;

/// Compensated (Kahan) summation. Density sums accumulate many terms of
/// very different magnitudes; naive summation loses the small tail terms
/// that matter in the ratio tests of the classifier.
class KahanSum {
 public:
  /// Adds a term.
  void Add(double x) {
    const double y = x - compensation_;
    const double t = sum_ + y;
    compensation_ = (t - sum_) - y;
    sum_ = t;
  }

  /// The compensated total.
  double Total() const { return sum_; }

 private:
  double sum_ = 0.0;
  double compensation_ = 0.0;
};

/// Standard normal pdf at z.
inline double StdNormalPdf(double z) {
  return std::exp(-0.5 * z * z) / kSqrt2Pi;
}

/// Normal pdf with mean mu, standard deviation sigma (> 0).
inline double NormalPdf(double x, double mu, double sigma) {
  const double z = (x - mu) / sigma;
  return StdNormalPdf(z) / sigma;
}

/// Standard normal cdf via erfc (accurate in both tails).
inline double StdNormalCdf(double z) { return 0.5 * std::erfc(-z / kSqrt2); }

/// Arithmetic mean; 0 for an empty span.
double Mean(std::span<const double> values);

/// Population variance (divides by N); 0 for spans of size < 1.
double Variance(std::span<const double> values);

/// Population standard deviation.
double StdDev(std::span<const double> values);

/// Sample variance (divides by N-1); 0 for spans of size < 2.
double SampleVariance(std::span<const double> values);

/// Squared Euclidean distance between equal-length vectors.
double SquaredEuclidean(std::span<const double> a, std::span<const double> b);

/// Euclidean distance between equal-length vectors.
double Euclidean(std::span<const double> a, std::span<const double> b);

/// True iff |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
inline bool AlmostEqual(double a, double b, double abs_tol = 1e-12,
                        double rel_tol = 1e-9) {
  const double diff = std::fabs(a - b);
  const double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

/// Clamps x into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Linearly spaced grid of `count` values from lo to hi inclusive
/// (count >= 2), e.g. for sweeping the error parameter f.
std::vector<double> Linspace(double lo, double hi, size_t count);

}  // namespace udm

#endif  // UDM_COMMON_MATH_UTIL_H_
