#include "common/random.h"

#include <cmath>

namespace udm {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[0] + state_[3], 23) + state_[0];
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 top bits -> [0, 1) with full double precision.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  UDM_DCHECK(lo <= hi) << "Uniform(lo, hi) with lo > hi";
  return lo + (hi - lo) * Uniform();
}

uint64_t Rng::UniformInt(uint64_t n) {
  UDM_DCHECK(n > 0) << "UniformInt(0)";
  const uint64_t threshold = -n % n;  // 2^64 mod n
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % n;
  }
}

double Rng::Gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u, v, s;
  do {
    u = 2.0 * Uniform() - 1.0;
    v = 2.0 * Uniform() - 1.0;
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  cached_gaussian_ = v * factor;
  has_cached_gaussian_ = true;
  return u * factor;
}

double Rng::Gaussian(double mean, double sigma) {
  UDM_DCHECK(sigma >= 0.0) << "Gaussian with negative sigma";
  return mean + sigma * Gaussian();
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  UDM_CHECK(k <= n) << "SampleWithoutReplacement(" << n << ", " << k << ")";
  // Partial Fisher-Yates over an index vector.
  std::vector<size_t> indices(n);
  for (size_t i = 0; i < n; ++i) indices[i] = i;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(indices[i], indices[j]);
    out.push_back(indices[i]);
  }
  return out;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace udm
