#ifndef UDM_COMMON_CRC32_H_
#define UDM_COMMON_CRC32_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace udm {

/// CRC-32 (IEEE 802.3, polynomial 0xEDB88320), the checksum used by gzip,
/// zip, and PNG. Serialized summaries and checkpoints carry it as an
/// integrity footer so that truncated or bit-flipped files are detected at
/// load time instead of silently corrupting a density model.
///
/// `Crc32` is incremental: feed the running value back in as `seed` to
/// checksum data arriving in chunks.
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

/// Formats a CRC as the fixed-width lower-case hex used in file footers
/// (e.g. "1a2b3c4d").
std::string Crc32Hex(uint32_t crc);

/// Parses the output of Crc32Hex. Returns false on malformed input (wrong
/// length or non-hex characters).
bool ParseCrc32Hex(std::string_view text, uint32_t* crc);

}  // namespace udm

#endif  // UDM_COMMON_CRC32_H_
