#include "common/exec_context.h"

namespace udm {

const char* StopCauseToString(StopCause cause) {
  switch (cause) {
    case StopCause::kCompleted:
      return "completed";
    case StopCause::kDeadline:
      return "deadline";
    case StopCause::kBudget:
      return "budget";
  }
  return "?";
}

Status ExecContext::BudgetStatus(uint64_t kernel_evals,
                                 uint64_t bytes) const {
  if (budget_.max_kernel_evals != 0 &&
      kernel_evals > budget_.max_kernel_evals) {
    return Status::ResourceExhausted(
        "kernel-evaluation budget exhausted (" +
        std::to_string(kernel_evals) + " > " +
        std::to_string(budget_.max_kernel_evals) + ")");
  }
  if (budget_.max_bytes != 0 && bytes > budget_.max_bytes) {
    return Status::ResourceExhausted(
        "byte budget exhausted (" + std::to_string(bytes) + " > " +
        std::to_string(budget_.max_bytes) + ")");
  }
  return Status::OK();
}

Status ExecContext::Check() const {
  if (cancel_.IsCancelled()) {
    return Status::Cancelled("operation cancelled");
  }
  if (deadline_.Expired()) {
    return Status::DeadlineExceeded("deadline expired");
  }
  return BudgetStatus(kernel_evals_spent(), bytes_spent());
}

Status ExecContext::ChargeKernelEvals(uint64_t n) {
  // fetch_add + n reports the post-charge total of *this* caller's charge,
  // so concurrent workers each see a consistent "my charge tipped it (or
  // not)" answer instead of a torn read-modify-write.
  const uint64_t total =
      kernel_evals_spent_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_kernel_evals == 0) return Status::OK();
  return BudgetStatus(total, bytes_spent());
}

Status ExecContext::ChargeBytes(uint64_t n) {
  const uint64_t total =
      bytes_spent_.fetch_add(n, std::memory_order_relaxed) + n;
  if (budget_.max_bytes == 0) return Status::OK();
  return BudgetStatus(kernel_evals_spent(), total);
}

}  // namespace udm
