#include "common/exec_context.h"

namespace udm {

const char* StopCauseToString(StopCause cause) {
  switch (cause) {
    case StopCause::kCompleted:
      return "completed";
    case StopCause::kDeadline:
      return "deadline";
    case StopCause::kBudget:
      return "budget";
  }
  return "?";
}

Status ExecContext::BudgetStatus() const {
  if (budget_.max_kernel_evals != 0 &&
      kernel_evals_spent_ > budget_.max_kernel_evals) {
    return Status::ResourceExhausted(
        "kernel-evaluation budget exhausted (" +
        std::to_string(kernel_evals_spent_) + " > " +
        std::to_string(budget_.max_kernel_evals) + ")");
  }
  if (budget_.max_bytes != 0 && bytes_spent_ > budget_.max_bytes) {
    return Status::ResourceExhausted(
        "byte budget exhausted (" + std::to_string(bytes_spent_) + " > " +
        std::to_string(budget_.max_bytes) + ")");
  }
  return Status::OK();
}

Status ExecContext::Check() const {
  if (cancel_.IsCancelled()) {
    return Status::Cancelled("operation cancelled");
  }
  if (deadline_.Expired()) {
    return Status::DeadlineExceeded("deadline expired");
  }
  return BudgetStatus();
}

Status ExecContext::ChargeKernelEvals(uint64_t n) {
  kernel_evals_spent_ += n;
  if (budget_.max_kernel_evals == 0) return Status::OK();
  return BudgetStatus();
}

Status ExecContext::ChargeBytes(uint64_t n) {
  bytes_spent_ += n;
  if (budget_.max_bytes == 0) return Status::OK();
  return BudgetStatus();
}

}  // namespace udm
