#ifndef UDM_COMMON_RANDOM_H_
#define UDM_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace udm {

/// Deterministic, fast pseudo-random generator (xoshiro256++ seeded via
/// SplitMix64). A fixed seed yields the same stream on every platform, which
/// keeps datasets, perturbations, and experiments reproducible — something
/// `std::mt19937` + `std::normal_distribution` does not guarantee across
/// standard libraries.
class Rng {
 public:
  /// Seeds the generator. Any 64-bit value is acceptable, including 0.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64 random bits.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0. Uses rejection sampling, so
  /// the distribution is exactly uniform.
  uint64_t UniformInt(uint64_t n);

  /// Standard normal deviate (Marsaglia polar method).
  double Gaussian();

  /// Normal deviate with the given mean and standard deviation (sigma >= 0).
  double Gaussian(double mean, double sigma);

  /// Fisher-Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    UDM_DCHECK(items != nullptr);
    for (size_t i = items->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Returns `k` distinct indices drawn uniformly from [0, n) in selection
  /// order. Requires k <= n.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; useful for giving each
  /// subsystem its own stream from one experiment seed.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace udm

#endif  // UDM_COMMON_RANDOM_H_
