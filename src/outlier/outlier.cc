#include "outlier/outlier.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "microcluster/clusterer.h"
#include "microcluster/mc_density.h"

namespace udm {

Result<OutlierScores> ScoreOutliers(const Dataset& data,
                                    const ErrorModel& errors,
                                    const OutlierOptions& options) {
  const size_t n = data.NumRows();
  if (n == 0) return Status::InvalidArgument("ScoreOutliers: empty dataset");
  if (errors.NumRows() != n || errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument("ScoreOutliers: error shape mismatch");
  }

  OutlierScores out;
  out.scores.resize(n);
  std::vector<size_t> all_dims(data.NumDims());
  for (size_t j = 0; j < data.NumDims(); ++j) all_dims[j] = j;

  if (options.num_clusters > 0) {
    // Scalable path: micro-cluster density (leave-one-out does not apply —
    // a single point's kernel is already diluted inside its cluster).
    MicroClusterer::Options mc_options;
    mc_options.num_clusters = options.num_clusters;
    UDM_ASSIGN_OR_RETURN(const std::vector<MicroCluster> summary,
                         BuildMicroClusters(data, errors, mc_options));
    UDM_ASSIGN_OR_RETURN(const McDensityModel model,
                         McDensityModel::Build(summary, options.density));
    for (size_t i = 0; i < n; ++i) {
      out.scores[i] = -model.LogEvaluateSubspace(data.Row(i), all_dims);
    }
  } else {
    UDM_ASSIGN_OR_RETURN(
        const ErrorKernelDensity kde,
        ErrorKernelDensity::Fit(data, errors, options.density));
    for (size_t i = 0; i < n; ++i) {
      double log_density = kde.LogEvaluateSubspace(data.Row(i), all_dims);
      if (options.leave_one_out && n > 1) {
        // f_loo = (N*f - own_kernel) / (N-1); own kernel at zero offset.
        double own_log = 0.0;
        for (size_t j = 0; j < data.NumDims(); ++j) {
          own_log += LogErrorKernelValue(0.0, kde.bandwidths()[j],
                                         errors.Psi(i, j),
                                         options.density.normalization);
        }
        const double nf = std::log(static_cast<double>(n)) + log_density;
        // log(exp(nf) - exp(own_log)), guarded: the self-term can dominate.
        if (own_log < nf) {
          log_density = nf + std::log1p(-std::exp(own_log - nf)) -
                        std::log(static_cast<double>(n - 1));
        } else {
          log_density = -std::numeric_limits<double>::infinity();
        }
      }
      out.scores[i] = -log_density;
    }
  }

  out.ranking.resize(n);
  for (size_t i = 0; i < n; ++i) out.ranking[i] = i;
  std::sort(out.ranking.begin(), out.ranking.end(),
            [&](size_t a, size_t b) {
              if (out.scores[a] != out.scores[b]) {
                return out.scores[a] > out.scores[b];
              }
              return a < b;
            });
  return out;
}

Result<std::vector<size_t>> TopOutliers(const Dataset& data,
                                        const ErrorModel& errors, size_t top_k,
                                        const OutlierOptions& options) {
  UDM_ASSIGN_OR_RETURN(const OutlierScores scores,
                       ScoreOutliers(data, errors, options));
  std::vector<size_t> top = scores.ranking;
  if (top.size() > top_k) top.resize(top_k);
  return top;
}

}  // namespace udm
