#ifndef UDM_OUTLIER_OUTLIER_H_
#define UDM_OUTLIER_OUTLIER_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "kde/error_kde.h"

namespace udm {

/// Density-based outlier scoring over uncertain data.
///
/// §3's thesis — "the density distribution of the data set is a surrogate
/// for the actual points in it" — applies directly to outlier detection:
/// a point in a low error-adjusted density region is anomalous, while a
/// point whose large error widens its neighbors' kernels is *not* flagged
/// merely for being noisy. Scores are negative log densities, so larger
/// means more outlying.
struct OutlierOptions {
  /// When true, score each point against a density fit that excludes its
  /// own kernel (leave-one-out), removing the self-bump that otherwise
  /// masks isolated points in small datasets.
  bool leave_one_out = true;
  /// Micro-cluster budget for the scalable path; 0 = exact point-level KDE.
  size_t num_clusters = 0;
  DensityEvalOptions density;
};

struct OutlierScores {
  /// −log f_Q(x_i) per row (larger = more outlying).
  std::vector<double> scores;
  /// Row indices sorted by descending score.
  std::vector<size_t> ranking;
};

/// Scores every row of the dataset.
Result<OutlierScores> ScoreOutliers(const Dataset& data,
                                    const ErrorModel& errors,
                                    const OutlierOptions& options = {});

/// Convenience: the `top_k` most outlying row indices.
Result<std::vector<size_t>> TopOutliers(const Dataset& data,
                                        const ErrorModel& errors,
                                        size_t top_k,
                                        const OutlierOptions& options = {});

}  // namespace udm

#endif  // UDM_OUTLIER_OUTLIER_H_
