#ifndef UDM_ROBUSTNESS_FAULT_INJECTOR_H_
#define UDM_ROBUSTNESS_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/random.h"

namespace udm {

/// One stream record as the summarizer sees it: features, error vector ψ,
/// arrival timestamp.
struct StreamRecord {
  std::vector<double> values;
  std::vector<double> psi;
  uint64_t timestamp = 0;
};

/// Fault categories the injector can apply. Each faulted record gets
/// exactly one, so downstream IngestStats counters are reconcilable
/// one-to-one against the injector's recorded schedule.
enum class FaultKind {
  kNone = 0,
  /// A feature or ψ entry becomes NaN or ±Inf.
  kNonFinite,
  /// A ψ entry is driven negative.
  kNegativeError,
  /// The timestamp regresses below an already-emitted clean timestamp.
  kOutOfOrder,
  /// The record loses (or gains) a trailing dimension.
  kDimensionMismatch,
  /// The record is silently dropped from the stream.
  kDrop,
  /// The record is emitted twice back to back.
  kDuplicate,
};

/// How many faults of each kind were actually injected.
struct FaultCounts {
  uint64_t non_finite = 0;
  uint64_t negative_error = 0;
  uint64_t out_of_order = 0;
  uint64_t dimension_mismatch = 0;
  uint64_t dropped = 0;
  uint64_t duplicated = 0;

  uint64_t total() const {
    return non_finite + negative_error + out_of_order + dimension_mismatch +
           dropped + duplicated;
  }
};

/// Where a fault landed: the index in the clean input, the index in the
/// emitted (corrupted) stream (kEmittedNone for drops), and its kind.
struct InjectedFault {
  size_t clean_index = 0;
  size_t emitted_index = 0;
  FaultKind kind = FaultKind::kNone;

  static constexpr size_t kEmittedNone = static_cast<size_t>(-1);
};

/// Deterministic fault injection over a record stream.
///
/// Given a seed, the schedule — which records are faulted and how — is a
/// pure function of the input length, so a test can corrupt the same
/// stream twice and get byte-identical corruption (the property the
/// crash-consistency test in checkpoint_test.cc leans on). The injector
/// records exactly what it did: counts per category and the position of
/// every fault.
///
/// The input stream must be clean (finite values, ψ >= 0, non-decreasing
/// timestamps); out-of-order faults are only injected when a regression is
/// actually guaranteed (an earlier clean record with a positive timestamp
/// has been emitted), falling back to kNonFinite otherwise, so recorded
/// counts always reflect what a validator will observe.
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    /// Fraction of records faulted (Bernoulli per record).
    double fault_rate = 0.05;
    /// Which categories may fire. Drops and duplicates change the emitted
    /// record count, so they default off for counter-reconciliation tests.
    bool enable_non_finite = true;
    bool enable_negative_error = true;
    bool enable_out_of_order = true;
    bool enable_dimension_mismatch = true;
    bool enable_drop = false;
    bool enable_duplicate = false;
  };

  explicit FaultInjector(const Options& options);

  /// Applies a fresh seeded schedule to `clean` and returns the corrupted
  /// stream. Resets counts()/faults() from any previous run.
  std::vector<StreamRecord> Apply(std::span<const StreamRecord> clean);

  /// Category totals for the last Apply.
  const FaultCounts& counts() const { return counts_; }

  /// Every fault from the last Apply, in emission order.
  std::span<const InjectedFault> faults() const { return faults_; }

  /// Arms `k` transient I/O faults: the next `k` ConsumeIoFault() calls
  /// return true (the caller treats each as a failed open/write/read),
  /// after which I/O behaves normally again. Models the
  /// fails-then-recovers pattern of a briefly full disk or flaky network
  /// mount — the case RetryPolicy exists for. Independent of the record
  /// schedule; Apply() does not reset the armed count.
  void ArmIoFaults(size_t k) { armed_io_faults_ = k; }

  /// Consumes one armed fault. True = the I/O operation should fail now.
  bool ConsumeIoFault() {
    if (armed_io_faults_ == 0) return false;
    --armed_io_faults_;
    ++io_faults_injected_;
    return true;
  }

  /// Faults still armed (not yet consumed).
  size_t armed_io_faults() const { return armed_io_faults_; }

  /// Total I/O faults delivered over this injector's lifetime.
  uint64_t io_faults_injected() const { return io_faults_injected_; }

  /// Arms `k` torn writes: the next `k` ConsumeTornWrite() calls return
  /// true, telling the writer to commit only a prefix of its payload and
  /// then fail — the on-disk signature of a crash after rename(2) landed
  /// but before the file data was flushed. Distinct from ArmIoFaults,
  /// which models writes that fail cleanly without leaving a file behind.
  void ArmTornWrites(size_t k) { armed_torn_writes_ = k; }

  /// Consumes one armed torn write. True = truncate the payload and fail.
  bool ConsumeTornWrite() {
    if (armed_torn_writes_ == 0) return false;
    --armed_torn_writes_;
    ++torn_writes_injected_;
    return true;
  }

  size_t armed_torn_writes() const { return armed_torn_writes_; }
  uint64_t torn_writes_injected() const { return torn_writes_injected_; }

  /// Arms `k` short reads: the next `k` ConsumeShortRead() calls return
  /// true, telling the reader it observed only a prefix of the file (a
  /// mid-read crash of the storage layer, or a reader racing a writer on
  /// a filesystem without atomic visibility). Recovery must treat the
  /// result exactly like a torn write: CRC mismatch, fall back.
  void ArmShortReads(size_t k) { armed_short_reads_ = k; }

  /// Consumes one armed short read. True = this read sees truncated data.
  bool ConsumeShortRead() {
    if (armed_short_reads_ == 0) return false;
    --armed_short_reads_;
    ++short_reads_injected_;
    return true;
  }

  size_t armed_short_reads() const { return armed_short_reads_; }
  uint64_t short_reads_injected() const { return short_reads_injected_; }

  /// Arms `k` crashes at a caller-defined site id (an enum value of the
  /// subsystem under test, e.g. ShardCrashSite). The next `k`
  /// ConsumeCrashAt(site) calls for that id return true; the caller
  /// simulates the process dying there — discarding in-memory state, not
  /// unwinding via error returns. Sites are independent: arming one never
  /// fires another, which is what lets a matrix test kill a shard at
  /// every site in turn.
  void ArmCrashAt(int site, size_t k = 1) { armed_crashes_[site] = k; }

  /// Consumes one armed crash at `site`. True = die here.
  bool ConsumeCrashAt(int site) {
    const auto it = armed_crashes_.find(site);
    if (it == armed_crashes_.end() || it->second == 0) return false;
    --it->second;
    ++crashes_injected_;
    return true;
  }

  /// Crashes still armed at `site`.
  size_t armed_crashes_at(int site) const {
    const auto it = armed_crashes_.find(site);
    return it == armed_crashes_.end() ? 0 : it->second;
  }

  /// Total crash points fired over this injector's lifetime.
  uint64_t crashes_injected() const { return crashes_injected_; }

 private:
  Options options_;
  FaultCounts counts_;
  std::vector<InjectedFault> faults_;
  size_t armed_io_faults_ = 0;
  uint64_t io_faults_injected_ = 0;
  size_t armed_torn_writes_ = 0;
  uint64_t torn_writes_injected_ = 0;
  size_t armed_short_reads_ = 0;
  uint64_t short_reads_injected_ = 0;
  std::map<int, size_t> armed_crashes_;
  uint64_t crashes_injected_ = 0;
};

}  // namespace udm

#endif  // UDM_ROBUSTNESS_FAULT_INJECTOR_H_
