#ifndef UDM_ROBUSTNESS_CHECKPOINT_H_
#define UDM_ROBUSTNESS_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "robustness/fault_injector.h"
#include "robustness/retry.h"
#include "stream/stream_summarizer.h"

namespace udm {

/// Durable crash recovery for long-running stream summarization.
///
/// The paper's summary is built in one pass over a stream that cannot be
/// replayed from the top; losing the process means losing hours of
/// compression. CheckpointManager persists the summarizer's complete state
/// (micro-clusters, time stats, ingest counters, repair state, options) on
/// a rotation of the last `max_keep` checkpoints, and recovery walks that
/// rotation newest-first past any truncated/corrupt/CRC-mismatched file.
///
/// Durability discipline:
///  * writes go to a temp file in the same directory, are fsync'd, then
///    `rename(2)` — readers never observe a half-written checkpoint;
///  * after the rename the parent directory is fsync'd, so the committed
///    entry survives a crash (without it a recovered process can find the
///    newest checkpoint vanished and silently restore a stale generation);
///  * every file ends in a CRC-32 footer over the entire body, so torn
///    writes, short reads, and bit rot are detected at restore time, not
///    at query time;
///  * rotation deletes the oldest file only after the new one is on disk,
///    so a crash mid-save still leaves `max_keep` valid generations.
///
/// The `cursor` is caller-defined resume metadata (typically the index of
/// the next record in the upstream source); it travels with the state so a
/// recovered process knows where to rejoin the stream.

/// Checkpoint file format version. v3 added the IngestBatch backpressure
/// counters (`backpressure` line); v4 appends the replay counter to that
/// line. v2 (no line) and v3 (two fields) files still restore, with the
/// missing counters zeroed.
inline constexpr int kCheckpointVersion = 4;

struct CheckpointOptions {
  /// Directory the rotation lives in (created by Create if absent).
  std::string directory;
  /// How many checkpoint generations to keep (K >= 1).
  size_t max_keep = 3;
  /// File stem: files are named `<basename>-<seq>.udmck`.
  std::string basename = "checkpoint";
  /// Retry schedule for transient I/O failures during Save/RestoreLatest.
  /// The default retries kIoError twice more with ~1-2 ms backoff; set
  /// max_attempts = 1 to restore fail-fast behavior.
  RetryPolicy retry;
  /// Test seam: when set, each save/restore attempt first consumes one
  /// armed fault from this injector (ArmIoFaults) and fails with kIoError
  /// if one fires. Armed torn writes (ArmTornWrites) make a save commit a
  /// truncated generation and fail; armed short reads (ArmShortReads) make
  /// a restore observe a prefix of one candidate file, forcing a CRC
  /// fallback. Not owned; must outlive the manager.
  FaultInjector* io_faults = nullptr;
};

/// Serializes summarizer state + cursor to the checkpoint wire format
/// (line-oriented text, CRC-32 footer). Exposed for tests and tooling.
std::string SerializeCheckpoint(const StreamSummarizer& summarizer,
                                uint64_t cursor);

struct DecodedCheckpoint {
  StreamSummarizer::State state;
  uint64_t cursor = 0;
};

/// Parses and CRC-verifies a checkpoint payload. Never crashes on garbage.
Result<DecodedCheckpoint> DeserializeCheckpoint(const std::string& text);

class CheckpointManager {
 public:
  /// Opens (and if needed creates) the checkpoint directory and scans it
  /// for existing generations so new saves continue the sequence.
  static Result<CheckpointManager> Create(const CheckpointOptions& options);

  /// Atomically persists the summarizer's state as the next generation and
  /// prunes the rotation to `max_keep` files. Transient I/O failures are
  /// retried per options().retry; the returned status is the final
  /// attempt's. RetryStats for the last Save are in last_retry_stats().
  Status Save(const StreamSummarizer& summarizer, uint64_t cursor);

  struct Restored {
    StreamSummarizer summarizer;
    /// The resume cursor stored with the winning checkpoint.
    uint64_t cursor = 0;
    /// Path of the checkpoint that restored cleanly.
    std::string path;
    /// Number of newer checkpoints that were rejected (corrupt/truncated)
    /// before this one.
    size_t fallbacks = 0;
  };

  /// Restores from the newest valid checkpoint, falling back across the
  /// rotation. NotFound if the directory holds no checkpoint at all;
  /// the last rejection's reason if every candidate is corrupt. A whole
  /// pass that fails on transient I/O is retried per options().retry.
  Result<Restored> RestoreLatest() const;

  /// Existing checkpoint files, newest first.
  std::vector<std::string> ListCheckpoints() const;

  const CheckpointOptions& options() const { return options_; }

  /// Attempt/backoff accounting for the most recent Save call.
  const RetryStats& last_retry_stats() const { return last_retry_stats_; }

 private:
  explicit CheckpointManager(CheckpointOptions options)
      : options_(std::move(options)) {}

  /// One un-retried save/restore attempt.
  Status SaveOnce(const StreamSummarizer& summarizer, uint64_t cursor);
  Result<Restored> RestoreOnce() const;

  CheckpointOptions options_;
  uint64_t next_sequence_ = 1;
  RetryStats last_retry_stats_;
};

}  // namespace udm

#endif  // UDM_ROBUSTNESS_CHECKPOINT_H_
