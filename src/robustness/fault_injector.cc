#include "robustness/fault_injector.h"

#include <cmath>
#include <limits>

namespace udm {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();
constexpr double kInf = std::numeric_limits<double>::infinity();

}  // namespace

FaultInjector::FaultInjector(const Options& options) : options_(options) {}

std::vector<StreamRecord> FaultInjector::Apply(
    std::span<const StreamRecord> clean) {
  counts_ = FaultCounts();
  faults_.clear();
  Rng rng(options_.seed);

  std::vector<FaultKind> menu;
  if (options_.enable_non_finite) menu.push_back(FaultKind::kNonFinite);
  if (options_.enable_negative_error) {
    menu.push_back(FaultKind::kNegativeError);
  }
  if (options_.enable_out_of_order) menu.push_back(FaultKind::kOutOfOrder);
  if (options_.enable_dimension_mismatch) {
    menu.push_back(FaultKind::kDimensionMismatch);
  }
  if (options_.enable_drop) menu.push_back(FaultKind::kDrop);
  if (options_.enable_duplicate) menu.push_back(FaultKind::kDuplicate);

  std::vector<StreamRecord> out;
  out.reserve(clean.size());
  // Highest clean timestamp already emitted — the bar an out-of-order
  // injection must regress below.
  uint64_t max_clean_ts_emitted = 0;
  bool any_clean_emitted = false;

  for (size_t i = 0; i < clean.size(); ++i) {
    const bool fire = !menu.empty() && rng.Uniform() < options_.fault_rate;
    if (!fire) {
      out.push_back(clean[i]);
      max_clean_ts_emitted =
          std::max(max_clean_ts_emitted, clean[i].timestamp);
      any_clean_emitted = true;
      continue;
    }

    FaultKind kind = menu[rng.UniformInt(menu.size())];
    if (kind == FaultKind::kOutOfOrder &&
        (!any_clean_emitted || max_clean_ts_emitted == 0)) {
      // No regression is possible yet; substitute a kind that always
      // applies so the recorded schedule matches reality.
      kind = FaultKind::kNonFinite;
    }

    StreamRecord record = clean[i];
    switch (kind) {
      case FaultKind::kNonFinite: {
        // Corrupt a feature or (when present) a ψ entry, alternating NaN
        // and Inf.
        const bool hit_psi = !record.psi.empty() && rng.Uniform() < 0.5;
        const double bad = rng.Uniform() < 0.5 ? kNaN : kInf;
        if (hit_psi) {
          record.psi[rng.UniformInt(record.psi.size())] = bad;
        } else if (!record.values.empty()) {
          record.values[rng.UniformInt(record.values.size())] = bad;
        }
        ++counts_.non_finite;
        faults_.push_back({i, out.size(), FaultKind::kNonFinite});
        out.push_back(std::move(record));
        break;
      }
      case FaultKind::kNegativeError: {
        if (!record.psi.empty()) {
          double& psi = record.psi[rng.UniformInt(record.psi.size())];
          psi = -(std::fabs(psi) + 1.0);
        }
        ++counts_.negative_error;
        faults_.push_back({i, out.size(), FaultKind::kNegativeError});
        out.push_back(std::move(record));
        break;
      }
      case FaultKind::kOutOfOrder: {
        // Regress strictly below the newest emitted clean timestamp.
        record.timestamp = rng.UniformInt(max_clean_ts_emitted);
        ++counts_.out_of_order;
        faults_.push_back({i, out.size(), FaultKind::kOutOfOrder});
        out.push_back(std::move(record));
        break;
      }
      case FaultKind::kDimensionMismatch: {
        if (record.values.size() > 1) {
          record.values.pop_back();
        } else {
          record.values.push_back(0.0);
        }
        ++counts_.dimension_mismatch;
        faults_.push_back({i, out.size(), FaultKind::kDimensionMismatch});
        out.push_back(std::move(record));
        break;
      }
      case FaultKind::kDrop: {
        ++counts_.dropped;
        faults_.push_back(
            {i, InjectedFault::kEmittedNone, FaultKind::kDrop});
        break;
      }
      case FaultKind::kDuplicate: {
        faults_.push_back({i, out.size() + 1, FaultKind::kDuplicate});
        out.push_back(record);
        out.push_back(std::move(record));
        ++counts_.duplicated;
        // The duplicated pair is clean data; it raises the timestamp bar.
        max_clean_ts_emitted =
            std::max(max_clean_ts_emitted, clean[i].timestamp);
        any_clean_emitted = true;
        break;
      }
      case FaultKind::kNone:
        break;
    }
  }
  return out;
}

}  // namespace udm
