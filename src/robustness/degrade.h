#ifndef UDM_ROBUSTNESS_DEGRADE_H_
#define UDM_ROBUSTNESS_DEGRADE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "kde/error_kde.h"
#include "microcluster/mc_density.h"

namespace udm {

/// Which rung of the degradation ladder served a prediction.
enum class DegradationTier {
  /// Exact per-class error-KDE (Eq. 4 per class): O(N·d) per class.
  kExact = 0,
  /// Micro-cluster density surrogate (Eq. 10 per class): O(q·d) per class.
  kMicroCluster = 1,
  /// Class-prior argmax: O(1), always affordable.
  kPrior = 2,
};

const char* DegradationTierToString(DegradationTier tier);

/// Counters describing how a DegradingClassifier has been serving: which
/// tier answered each query, and why queries were pushed down the ladder.
struct DegradationReport {
  uint64_t served_exact = 0;
  uint64_t served_micro = 0;
  uint64_t served_prior = 0;
  /// Tier falls caused by the deadline (one query can fall twice).
  uint64_t degraded_deadline = 0;
  /// Tier falls caused by budget exhaustion.
  uint64_t degraded_budget = 0;

  uint64_t total_served() const {
    return served_exact + served_micro + served_prior;
  }
  void Merge(const DegradationReport& other);
  /// One-line human-readable summary for CLI/bench output.
  std::string ToString() const;

  bool operator==(const DegradationReport& other) const = default;
};

/// A classifier that never misses its deadline: a Bayes classifier over
/// per-class error-adjusted densities, organized as a three-rung ladder of
/// successively cheaper density surrogates. Each query walks the ladder
/// under its ExecContext — when a rung's evaluations would violate the
/// deadline or budget, the query falls to the next rung instead of
/// failing; the bottom rung (class priors) costs nothing, so every
/// non-cancelled query produces a prediction with its tier recorded.
///
/// This is the paper's scalability story (§2.1: exact KDE vs micro-cluster
/// surrogate) recast as a robustness mechanism: the surrogate is no longer
/// just a throughput optimization but the graceful-degradation path under
/// overload. Cancellation is the one exit that never degrades — a
/// cancelled query returns kCancelled and mutates nothing, including the
/// report.
///
/// Tier admission keeps a reserve so a fall still lands somewhere useful:
/// rung costs in kernel evaluations are known exactly up front (N·d per
/// class exact, q·d per class micro), so the exact rung is attempted only
/// when the remaining budget covers it *plus* the micro rung, and it runs
/// under a child deadline capped at a fraction of the remaining time —
/// when it falls, there is still budget and time for the surrogate.
/// Without the reserve, the top rung would always exhaust the shared
/// context and every degraded query would skip straight to the prior.
class DegradingClassifier {
 public:
  struct Options {
    /// Micro-cluster budget q for the middle rung.
    size_t num_clusters = 60;
    /// Kernel/bandwidth knobs shared by both density rungs.
    DensityEvalOptions density;
  };

  /// A prediction plus the rung that produced it.
  struct Prediction {
    int label = 0;
    DegradationTier tier = DegradationTier::kExact;
  };

  /// Trains all three rungs from labeled uncertain data (labels dense in
  /// [0, k), k >= 2; error model matching the data shape).
  static Result<DegradingClassifier> Train(const Dataset& data,
                                           const ErrorModel& errors,
                                           const Options& options);
  static Result<DegradingClassifier> Train(const Dataset& data,
                                           const ErrorModel& errors) {
    return Train(data, errors, Options());
  }

  /// Classifies `x` at the most accurate tier the context affords.
  /// Cancellation (checked before any work) fails with kCancelled and
  /// leaves report() untouched; otherwise the call succeeds and the serve/
  /// degradation counters are updated.
  Result<Prediction> Predict(std::span<const double> x, ExecContext& ctx);

  /// Unbounded prediction (always serves the exact tier).
  Result<Prediction> Predict(std::span<const double> x);

  /// Serving counters since construction (or the last ResetReport).
  const DegradationReport& report() const { return report_; }
  void ResetReport() { report_ = DegradationReport(); }

  size_t NumClasses() const { return class_counts_.size(); }
  size_t num_dims() const { return num_dims_; }

 private:
  DegradingClassifier(std::vector<ErrorKernelDensity> exact_models,
                      std::vector<McDensityModel> micro_models,
                      std::vector<size_t> class_counts,
                      std::vector<double> log_priors, size_t num_dims)
      : exact_models_(std::move(exact_models)),
        micro_models_(std::move(micro_models)),
        class_counts_(std::move(class_counts)),
        log_priors_(std::move(log_priors)),
        num_dims_(num_dims) {
    all_dims_.resize(num_dims_);
    for (size_t j = 0; j < num_dims_; ++j) all_dims_[j] = j;
    for (const ErrorKernelDensity& m : exact_models_) {
      exact_cost_ += static_cast<uint64_t>(m.num_points()) * num_dims_;
    }
    for (const McDensityModel& m : micro_models_) {
      micro_cost_ += static_cast<uint64_t>(m.num_clusters()) * num_dims_;
    }
  }

  std::vector<ErrorKernelDensity> exact_models_;  // one per class
  std::vector<McDensityModel> micro_models_;      // one per class
  std::vector<size_t> class_counts_;              // |D_i|
  std::vector<double> log_priors_;                // log(|D_i| / |D|)
  size_t num_dims_;
  std::vector<size_t> all_dims_;  // {0, ..., d-1} scratch for subspace calls
  uint64_t exact_cost_ = 0;  // kernel evals per exact-tier query (Σ N_c · d)
  uint64_t micro_cost_ = 0;  // kernel evals per micro-tier query (Σ q_c · d)
  DegradationReport report_;
};

}  // namespace udm

#endif  // UDM_ROBUSTNESS_DEGRADE_H_
