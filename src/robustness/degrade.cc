#include "robustness/degrade.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "microcluster/clusterer.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace udm {

namespace {

/// Ladder outcome counters (`classify.*`), aggregated across classifier
/// instances — the per-instance DegradationReport stays the precise record.
struct ClassifyMetrics {
  obs::Counter& served_exact;
  obs::Counter& served_micro;
  obs::Counter& served_prior;
  obs::Counter& degraded_deadline;
  obs::Counter& degraded_budget;
  obs::Counter& admission_rejections;

  static ClassifyMetrics& Get() {
    static ClassifyMetrics* metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return new ClassifyMetrics{
          registry.GetCounter("classify.served.exact"),
          registry.GetCounter("classify.served.micro"),
          registry.GetCounter("classify.served.prior"),
          registry.GetCounter("classify.degraded.deadline"),
          registry.GetCounter("classify.degraded.budget"),
          registry.GetCounter("classify.admission.rejections")};
    }();
    return *metrics;
  }
};

/// Fraction of the remaining time the exact rung may spend; the rest is
/// the reserve that lets the micro rung still make its (much cheaper)
/// pass after a fall.
constexpr double kExactTimeFraction = 0.8;

/// argmax_c [ log prior_c + log f_c(x) ] over one rung's models. Any
/// violation of `ctx` aborts the whole rung — no partial posteriors.
template <typename Model>
Result<int> BestBayesLabel(const std::vector<Model>& models,
                           const std::vector<double>& log_priors,
                           std::span<const double> x,
                           std::span<const size_t> dims, ExecContext& ctx) {
  int best = 0;
  double best_score = 0.0;
  EvalRequest request;
  request.points = x;
  request.subspace = dims;
  request.ctx = &ctx;
  request.log_space = true;
  for (size_t c = 0; c < models.size(); ++c) {
    // One-point requests never return partials: a context violation
    // surfaces as the failed status that aborts this rung.
    UDM_ASSIGN_OR_RETURN(const EvalResult eval, models[c].Evaluate(request));
    const double score = log_priors[c] + eval.densities[0];
    if (c == 0 || score > best_score) {
      best = static_cast<int>(c);
      best_score = score;
    }
  }
  return best;
}

}  // namespace

const char* DegradationTierToString(DegradationTier tier) {
  switch (tier) {
    case DegradationTier::kExact:
      return "exact";
    case DegradationTier::kMicroCluster:
      return "micro-cluster";
    case DegradationTier::kPrior:
      return "prior";
  }
  return "unknown";
}

void DegradationReport::Merge(const DegradationReport& other) {
  served_exact += other.served_exact;
  served_micro += other.served_micro;
  served_prior += other.served_prior;
  degraded_deadline += other.degraded_deadline;
  degraded_budget += other.degraded_budget;
}

std::string DegradationReport::ToString() const {
  std::ostringstream out;
  out << "served " << total_served() << " (exact=" << served_exact
      << " micro=" << served_micro << " prior=" << served_prior
      << "), degradations deadline=" << degraded_deadline
      << " budget=" << degraded_budget;
  return out.str();
}

Result<DegradingClassifier> DegradingClassifier::Train(
    const Dataset& data, const ErrorModel& errors, const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("DegradingClassifier: empty dataset");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "DegradingClassifier: error model shape mismatch");
  }
  const size_t k = data.NumClasses();
  if (k < 2) {
    return Status::InvalidArgument(
        "DegradingClassifier: need at least two classes");
  }

  MicroClusterer::Options mc_options;
  mc_options.num_clusters = options.num_clusters;

  std::vector<ErrorKernelDensity> exact_models;
  std::vector<McDensityModel> micro_models;
  std::vector<size_t> class_counts(k, 0);
  std::vector<double> log_priors(k, 0.0);
  exact_models.reserve(k);
  micro_models.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    const std::vector<size_t> indices =
        data.IndicesOfLabel(static_cast<int>(c));
    if (indices.empty()) {
      return Status::InvalidArgument(
          "DegradingClassifier: class " + std::to_string(c) +
          " has no training rows (labels must be dense)");
    }
    class_counts[c] = indices.size();
    log_priors[c] = std::log(static_cast<double>(indices.size()) /
                             static_cast<double>(data.NumRows()));
    const Dataset subset = data.Select(indices);
    const ErrorModel subset_errors = errors.Select(indices);
    UDM_ASSIGN_OR_RETURN(
        ErrorKernelDensity exact,
        ErrorKernelDensity::Fit(subset, subset_errors, options.density));
    exact_models.push_back(std::move(exact));
    UDM_ASSIGN_OR_RETURN(std::vector<MicroCluster> summary,
                         BuildMicroClusters(subset, subset_errors, mc_options));
    UDM_ASSIGN_OR_RETURN(McDensityModel micro,
                         McDensityModel::Build(summary, options.density));
    micro_models.push_back(std::move(micro));
  }
  return DegradingClassifier(std::move(exact_models), std::move(micro_models),
                             std::move(class_counts), std::move(log_priors),
                             data.NumDims());
}

Result<DegradingClassifier::Prediction> DegradingClassifier::Predict(
    std::span<const double> x) {
  ExecContext unbounded;
  return Predict(x, unbounded);
}

Result<DegradingClassifier::Prediction> DegradingClassifier::Predict(
    std::span<const double> x, ExecContext& ctx) {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument(
        "DegradingClassifier: point dimension mismatch");
  }
  // Cancellation is the only non-degradable exit, and it must leave the
  // classifier (report included) untouched — check it before any work.
  if (ctx.cancellation().IsCancelled()) {
    return Status::Cancelled("DegradingClassifier: query cancelled");
  }

  // Walk the ladder. A deadline/budget violation inside (or admission
  // failure before) a rung abandons it and records why.
  UDM_TRACE_SPAN("classify.predict");
  const auto note_degradation = [&](StatusCode cause) {
    if (cause == StatusCode::kDeadlineExceeded) {
      ++report_.degraded_deadline;
      ClassifyMetrics::Get().degraded_deadline.Increment();
    } else {
      ++report_.degraded_budget;
      ClassifyMetrics::Get().degraded_budget.Increment();
    }
  };

  // Kernel evaluations the caller's budget still affords.
  const auto remaining_evals = [&]() -> uint64_t {
    const uint64_t max = ctx.budget().max_kernel_evals;
    if (max == 0) return std::numeric_limits<uint64_t>::max();
    const uint64_t spent = ctx.kernel_evals_spent();
    return max > spent ? max - spent : 0;
  };

  // Rung costs are deterministic, so budget admission is a pre-flight
  // comparison; each rung runs under a child context carrying the caller's
  // cancellation token (budget-unlimited — admission already decided), and
  // its spend is charged back to the caller afterwards.
  const uint64_t micro_reserve =
      micro_cost_ < std::numeric_limits<uint64_t>::max() - exact_cost_
          ? micro_cost_
          : 0;

  // Rung 1: exact per-class error-KDE Bayes scores. Admitted only with
  // budget for itself plus the micro reserve, under a deadline that keeps
  // a time reserve for the fall.
  if (remaining_evals() < exact_cost_ + micro_reserve) {
    ClassifyMetrics::Get().admission_rejections.Increment();
    note_degradation(StatusCode::kResourceExhausted);
  } else {
    Deadline tier_deadline = ctx.deadline();
    if (!tier_deadline.is_infinite()) {
      tier_deadline = Deadline::AfterSeconds(
          ctx.deadline().RemainingSeconds() * kExactTimeFraction);
    }
    ExecContext tier_ctx(tier_deadline, ctx.cancellation(), ExecBudget{});
    const Result<int> label =
        BestBayesLabel(exact_models_, log_priors_, x, all_dims_, tier_ctx);
    (void)ctx.ChargeKernelEvals(tier_ctx.kernel_evals_spent());
    if (label.ok()) {
      ++report_.served_exact;
      ClassifyMetrics::Get().served_exact.Increment();
      return Prediction{*label, DegradationTier::kExact};
    }
    if (label.status().code() == StatusCode::kCancelled) {
      return label.status();
    }
    note_degradation(label.status().code());
  }

  // Rung 2: micro-cluster surrogate under the full remaining deadline.
  if (remaining_evals() < micro_cost_) {
    ClassifyMetrics::Get().admission_rejections.Increment();
    note_degradation(StatusCode::kResourceExhausted);
  } else {
    ExecContext tier_ctx(ctx.deadline(), ctx.cancellation(), ExecBudget{});
    const Result<int> label =
        BestBayesLabel(micro_models_, log_priors_, x, all_dims_, tier_ctx);
    (void)ctx.ChargeKernelEvals(tier_ctx.kernel_evals_spent());
    if (label.ok()) {
      ++report_.served_micro;
      ClassifyMetrics::Get().served_micro.Increment();
      return Prediction{*label, DegradationTier::kMicroCluster};
    }
    if (label.status().code() == StatusCode::kCancelled) {
      return label.status();
    }
    note_degradation(label.status().code());
  }

  // Rung 3: class priors — zero evaluations, always affordable.
  Prediction best{0, DegradationTier::kPrior};
  for (size_t c = 1; c < log_priors_.size(); ++c) {
    if (log_priors_[c] > log_priors_[static_cast<size_t>(best.label)]) {
      best.label = static_cast<int>(c);
    }
  }
  ++report_.served_prior;
  ClassifyMetrics::Get().served_prior.Increment();
  return best;
}

}  // namespace udm
