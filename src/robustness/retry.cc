#include "robustness/retry.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <thread>

#include "common/logging.h"
#include "obs/metrics.h"

namespace udm {

namespace {

/// Millisecond-scale buckets: 0.125 ms up to ~2 minutes.
obs::Histogram& BackoffHistogram() {
  static obs::Histogram& hist = obs::MetricsRegistry::Global().GetHistogram(
      "retry.backoff_ms", {/*first_bound=*/0.125, /*growth=*/2.0,
                           /*num_buckets=*/20});
  return hist;
}

}  // namespace

double BackoffMillis(const RetryPolicy& policy, size_t attempt, Rng& rng) {
  UDM_CHECK(attempt >= 2) << "BackoffMillis: attempt 1 never sleeps";
  const double exponent = static_cast<double>(attempt - 2);
  double base = policy.initial_backoff_ms *
                std::pow(policy.backoff_multiplier, exponent);
  base = std::min(base, policy.max_backoff_ms);
  const double jitter = std::clamp(policy.jitter, 0.0, 1.0);
  // One draw per backoff keeps the schedule a pure function of the seed.
  const double factor = 1.0 + jitter * (2.0 * rng.Uniform() - 1.0);
  return std::max(0.0, base * factor);
}

namespace {

/// Shared retry loop; `ctx`, when non-null, bounds retry wall-time: a
/// retry is abandoned when the context is cancelled/expired or when the
/// next backoff would sleep past the remaining deadline.
Status RetryWithPolicyImpl(const RetryPolicy& policy,
                           const std::function<Status()>& op,
                           ExecContext* ctx, RetryStats* stats) {
  if (stats != nullptr) *stats = RetryStats();
  if (!op) return Status::InvalidArgument("RetryWithPolicy: null operation");
  const size_t max_attempts = std::max<size_t>(policy.max_attempts, 1);
  Rng rng(policy.seed);
  Status last = Status::OK();
  for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      const double backoff_ms = BackoffMillis(policy, attempt, rng);
      if (ctx != nullptr) {
        if (Status check = ctx->Check(); !check.ok()) {
          return last.WithContext("retry abandoned (" +
                                  std::string(check.message()) + ")");
        }
        if (backoff_ms / 1000.0 > ctx->deadline().RemainingSeconds()) {
          static obs::Counter& truncations =
              obs::MetricsRegistry::Global().GetCounter(
                  "retry.deadline_truncated");
          truncations.Increment();
          return last.WithContext("retry abandoned (backoff of " +
                                  std::to_string(backoff_ms) +
                                  " ms would overshoot the deadline)");
        }
      }
      if (stats != nullptr) stats->total_backoff_ms += backoff_ms;
      BackoffHistogram().Record(backoff_ms);
      if (backoff_ms > 0.0) {
        static obs::Counter& sleeps =
            obs::MetricsRegistry::Global().GetCounter("retry.backoff.sleeps");
        sleeps.Increment();
        std::this_thread::sleep_for(
            std::chrono::duration<double, std::milli>(backoff_ms));
      }
    }
    if (stats != nullptr) ++stats->attempts;
    static obs::Counter& attempts =
        obs::MetricsRegistry::Global().GetCounter("retry.attempts");
    attempts.Increment();
    last = op();
    if (last.code() != StatusCode::kIoError) return last;
  }
  return last;
}

}  // namespace

Status RetryWithPolicy(const RetryPolicy& policy,
                       const std::function<Status()>& op,
                       RetryStats* stats) {
  return RetryWithPolicyImpl(policy, op, /*ctx=*/nullptr, stats);
}

Status RetryWithPolicy(const RetryPolicy& policy,
                       const std::function<Status()>& op, ExecContext& ctx,
                       RetryStats* stats) {
  return RetryWithPolicyImpl(policy, op, &ctx, stats);
}

}  // namespace udm
