#ifndef UDM_ROBUSTNESS_RETRY_H_
#define UDM_ROBUSTNESS_RETRY_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/exec_context.h"
#include "common/random.h"
#include "common/status.h"

namespace udm {

/// Bounded retry with exponential backoff and deterministic jitter.
///
/// Only kIoError is treated as transient: checkpoint saves and restores go
/// through the filesystem, where a full disk, a busy NFS server, or an
/// injected fault (FaultInjector::ArmIoFaults) can clear on the next
/// attempt. Every other code — including kInvalidArgument from a corrupt
/// payload — fails fast, because retrying cannot change the outcome.
///
/// Jitter is seeded, not wall-clock derived, so a test can predict the
/// exact backoff schedule (see BackoffMillis) and a production fleet can
/// decorrelate by seeding per process.
struct RetryPolicy {
  /// Total attempts including the first (1 = no retries).
  size_t max_attempts = 3;
  /// Backoff before the second attempt.
  double initial_backoff_ms = 1.0;
  /// Growth factor per subsequent attempt.
  double backoff_multiplier = 2.0;
  /// Backoff ceiling (pre-jitter).
  double max_backoff_ms = 1000.0;
  /// Uniform jitter fraction: the actual sleep is the base backoff scaled
  /// by a factor drawn from [1 - jitter, 1 + jitter].
  double jitter = 0.1;
  /// Seed for the jitter stream (deterministic schedule per seed).
  uint64_t seed = 1;
};

/// What a RetryWithPolicy call actually did.
struct RetryStats {
  /// Attempts executed (>= 1 whenever the operation ran at all).
  size_t attempts = 0;
  /// Total time slept between attempts.
  double total_backoff_ms = 0.0;
};

/// Backoff (in ms, jitter applied) slept before attempt `attempt`
/// (1-based; attempt 1 never sleeps, so this requires attempt >= 2). Draws
/// one value from `rng` — feed a fresh Rng(policy.seed) and call with
/// attempt = 2, 3, ... to reproduce the schedule RetryWithPolicy uses.
double BackoffMillis(const RetryPolicy& policy, size_t attempt, Rng& rng);

/// Runs `op` up to policy.max_attempts times, sleeping the jittered
/// backoff between attempts. Returns the first non-transient status (OK or
/// any code other than kIoError) immediately; after the attempt budget is
/// exhausted, returns the last kIoError. `stats`, when non-null, is
/// overwritten with what happened.
Status RetryWithPolicy(const RetryPolicy& policy,
                       const std::function<Status()>& op,
                       RetryStats* stats = nullptr);

/// Deadline-bounded retry: like RetryWithPolicy, but the retry loop
/// respects `ctx` so backoff can never sleep past the caller's deadline.
/// The first attempt always runs (a zero-remaining deadline still gets one
/// shot, matching ExecContext's check-at-boundaries convention); before
/// each *re*try the loop gives up — returning the last transient error
/// with context — when `ctx` is cancelled or expired, or when the planned
/// backoff would overshoot the remaining deadline. Total retry wall-time
/// is therefore capped by the context instead of the policy's worst-case
/// backoff sum.
Status RetryWithPolicy(const RetryPolicy& policy,
                       const std::function<Status()>& op, ExecContext& ctx,
                       RetryStats* stats = nullptr);

}  // namespace udm

#endif  // UDM_ROBUSTNESS_RETRY_H_
