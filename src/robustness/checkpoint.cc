#include "robustness/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>

#include "common/crc32.h"
#include "common/stopwatch.h"
#include "microcluster/serialize.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace udm {

namespace {

namespace fs = std::filesystem;

constexpr char kMagic[] = "udm-checkpoint";
constexpr char kCrcKey[] = "crc32";
constexpr char kFileSuffix[] = ".udmck";
constexpr size_t kMaxTimeStats = 1u << 22;

bool ReadU64(std::istream& in, uint64_t* out) {
  std::string token;
  if (!(in >> token) || token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

bool ReadKeyedU64(std::istream& in, std::string_view key, uint64_t* out) {
  std::string k;
  return (in >> k) && k == key && ReadU64(in, out);
}

Status Malformed(const std::string& what) {
  return Status::InvalidArgument("DeserializeCheckpoint: malformed " + what);
}

/// Writes `payload` to `path` through POSIX I/O and fsyncs the file data
/// before returning. An ofstream flush only pushes bytes to the page
/// cache; without the fsync a post-rename crash can leave a committed
/// file with torn contents — exactly the failure ArmTornWrites simulates.
Status WriteFileDurably(const std::string& path, std::string_view payload) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("CheckpointManager: cannot open '" + path +
                           "' for writing");
  }
  size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0) {
      ::close(fd);
      return Status::IoError("CheckpointManager: write failed for '" + path +
                             "'");
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IoError("CheckpointManager: fsync failed for '" + path +
                           "'");
  }
  if (::close(fd) != 0) {
    return Status::IoError("CheckpointManager: close failed for '" + path +
                           "'");
  }
  return Status::OK();
}

/// Fsyncs a directory so a just-renamed entry survives a crash. rename(2)
/// updates the directory inode in memory; until that inode is flushed, a
/// power cut can make the new checkpoint vanish even though its data
/// blocks were written — the recovered process would restore a stale
/// generation and silently lose progress.
Status FsyncDirectory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    return Status::IoError("CheckpointManager: cannot open directory '" +
                           dir + "' for fsync");
  }
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::IoError("CheckpointManager: directory fsync failed for '" +
                           dir + "'");
  }
  return Status::OK();
}

}  // namespace

std::string SerializeCheckpoint(const StreamSummarizer& summarizer,
                                uint64_t cursor) {
  const StreamSummarizer::State state = summarizer.ExportState();
  std::ostringstream out;
  out << std::setprecision(17);
  out << kMagic << " " << kCheckpointVersion << "\n";
  out << "cursor " << cursor << "\n";
  out << "dims " << state.num_dims << "\n";
  out << "options num_clusters " << state.options.num_clusters
      << " distance " << static_cast<int>(state.options.distance)
      << " enforce_monotonic_time "
      << (state.options.enforce_monotonic_time ? 1 : 0) << " policy "
      << static_cast<int>(state.options.policy) << "\n";
  out << "last_timestamp " << state.last_timestamp << "\n";
  const IngestStats& s = state.stats;
  out << "stats " << s.records_ok << " " << s.records_repaired << " "
      << s.records_quarantined << " " << s.records_rejected << " "
      << s.dimension_mismatches << " " << s.out_of_order_timestamps << " "
      << s.non_finite_values << " " << s.negative_errors << "\n";
  // v3: IngestBatch backpressure counters; v4 appends the replay total.
  out << "backpressure " << s.records_deferred << " "
      << s.batch_deadline_deferrals << " " << s.records_replayed << "\n";
  out << "repair-sums";
  for (double v : state.repair_sums) out << " " << v;
  out << "\nrepair-counts";
  for (uint64_t v : state.repair_counts) out << " " << v;
  out << "\ntimestats " << state.time_stats.size() << "\n";
  for (const StreamSummarizer::TimeStats& ts : state.time_stats) {
    out << ts.first_timestamp << " " << ts.last_timestamp << "\n";
  }
  // The micro-cluster block rides along in the v2 summary format (with its
  // own CRC footer) as a length-prefixed blob.
  const std::string clusters =
      SerializeMicroClusters(state.clusters, kSerializeVersionLatest);
  out << "clusters " << clusters.size() << "\n" << clusters;
  std::string text = out.str();
  text += std::string(kCrcKey) + " " + Crc32Hex(Crc32(text)) + "\n";
  return text;
}

Result<DecodedCheckpoint> DeserializeCheckpoint(const std::string& text) {
  // Verify the whole-file CRC footer before trusting any field.
  const size_t footer_pos = text.rfind(kCrcKey);
  if (footer_pos == std::string::npos ||
      (footer_pos != 0 && text[footer_pos - 1] != '\n')) {
    return Status::InvalidArgument(
        "DeserializeCheckpoint: missing crc32 footer (truncated file?)");
  }
  {
    std::istringstream footer(text.substr(footer_pos));
    std::string key;
    std::string hex;
    std::string extra;
    uint32_t expected = 0;
    if (!(footer >> key >> hex) || key != kCrcKey || (footer >> extra) ||
        !ParseCrc32Hex(hex, &expected)) {
      return Malformed("crc32 footer");
    }
    const uint32_t actual =
        Crc32(std::string_view(text.data(), footer_pos));
    if (actual != expected) {
      return Status::InvalidArgument(
          "DeserializeCheckpoint: CRC mismatch (stored " + hex +
          ", computed " + Crc32Hex(actual) + ") — checkpoint is corrupt");
    }
  }
  const std::string body = text.substr(0, footer_pos);
  std::istringstream in(body);

  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Malformed("header magic");
  }
  if (version < 2 || version > kCheckpointVersion) {
    return Status::InvalidArgument(
        "DeserializeCheckpoint: unsupported version " +
        std::to_string(version));
  }

  DecodedCheckpoint decoded;
  StreamSummarizer::State& state = decoded.state;
  uint64_t dims = 0;
  if (!ReadKeyedU64(in, "cursor", &decoded.cursor) ||
      !ReadKeyedU64(in, "dims", &dims) || dims == 0) {
    return Malformed("cursor/dims");
  }
  state.num_dims = dims;

  std::string key;
  uint64_t num_clusters = 0;
  uint64_t distance = 0;
  uint64_t monotonic = 0;
  uint64_t policy = 0;
  if (!(in >> key) || key != "options" ||
      !ReadKeyedU64(in, "num_clusters", &num_clusters) || num_clusters == 0 ||
      !ReadKeyedU64(in, "distance", &distance) || distance > 1 ||
      !ReadKeyedU64(in, "enforce_monotonic_time", &monotonic) ||
      monotonic > 1 || !ReadKeyedU64(in, "policy", &policy) || policy > 2) {
    return Malformed("options line");
  }
  state.options.num_clusters = num_clusters;
  state.options.distance = static_cast<AssignmentDistance>(distance);
  state.options.enforce_monotonic_time = monotonic == 1;
  state.options.policy = static_cast<FaultPolicy>(policy);

  if (!ReadKeyedU64(in, "last_timestamp", &state.last_timestamp)) {
    return Malformed("last_timestamp");
  }
  IngestStats& s = state.stats;
  if (!(in >> key) || key != "stats" || !ReadU64(in, &s.records_ok) ||
      !ReadU64(in, &s.records_repaired) ||
      !ReadU64(in, &s.records_quarantined) ||
      !ReadU64(in, &s.records_rejected) ||
      !ReadU64(in, &s.dimension_mismatches) ||
      !ReadU64(in, &s.out_of_order_timestamps) ||
      !ReadU64(in, &s.non_finite_values) || !ReadU64(in, &s.negative_errors)) {
    return Malformed("stats line");
  }
  if (version >= 3) {
    if (!(in >> key) || key != "backpressure" ||
        !ReadU64(in, &s.records_deferred) ||
        !ReadU64(in, &s.batch_deadline_deferrals)) {
      return Malformed("backpressure line");
    }
    if (version >= 4 && !ReadU64(in, &s.records_replayed)) {
      return Malformed("backpressure replay field");
    }
  }
  // v2 predates the backpressure counters; they stay zero (as does the
  // v4 replay total for v3 files).

  if (!(in >> key) || key != "repair-sums") return Malformed("repair-sums");
  state.repair_sums.resize(dims);
  for (double& v : state.repair_sums) {
    if (!(in >> v) || !std::isfinite(v)) return Malformed("repair-sums entry");
  }
  if (!(in >> key) || key != "repair-counts") {
    return Malformed("repair-counts");
  }
  state.repair_counts.resize(dims);
  for (uint64_t& v : state.repair_counts) {
    if (!ReadU64(in, &v)) return Malformed("repair-counts entry");
  }

  uint64_t num_time_stats = 0;
  if (!ReadKeyedU64(in, "timestats", &num_time_stats) ||
      num_time_stats > kMaxTimeStats) {
    return Malformed("timestats count");
  }
  state.time_stats.resize(num_time_stats);
  for (StreamSummarizer::TimeStats& ts : state.time_stats) {
    if (!ReadU64(in, &ts.first_timestamp) ||
        !ReadU64(in, &ts.last_timestamp)) {
      return Malformed("timestats entry");
    }
  }

  uint64_t cluster_bytes = 0;
  if (!ReadKeyedU64(in, "clusters", &cluster_bytes)) {
    return Malformed("clusters length");
  }
  if (in.get() != '\n') return Malformed("clusters separator");
  const size_t blob_start = static_cast<size_t>(in.tellg());
  if (cluster_bytes > body.size() - blob_start) {
    return Malformed("clusters blob (declared length exceeds payload)");
  }
  const std::string blob = body.substr(blob_start, cluster_bytes);
  Result<std::vector<MicroCluster>> clusters = DeserializeMicroClusters(blob);
  if (!clusters.ok()) {
    return clusters.status().WithContext("DeserializeCheckpoint");
  }
  state.clusters = std::move(clusters).value();
  return decoded;
}

Result<CheckpointManager> CheckpointManager::Create(
    const CheckpointOptions& options) {
  if (options.directory.empty()) {
    return Status::InvalidArgument("CheckpointManager: empty directory");
  }
  if (options.max_keep == 0) {
    return Status::InvalidArgument("CheckpointManager: max_keep == 0");
  }
  if (options.basename.empty() ||
      options.basename.find('/') != std::string::npos) {
    return Status::InvalidArgument("CheckpointManager: bad basename");
  }
  std::error_code ec;
  fs::create_directories(options.directory, ec);
  if (ec) {
    return Status::IoError("CheckpointManager: cannot create '" +
                           options.directory + "': " + ec.message());
  }
  CheckpointManager manager(options);
  // Continue the sequence past any generation already on disk.
  for (const std::string& path : manager.ListCheckpoints()) {
    const std::string stem = fs::path(path).stem().string();
    const size_t dash = stem.rfind('-');
    if (dash == std::string::npos) continue;
    const uint64_t seq = std::strtoull(stem.c_str() + dash + 1, nullptr, 10);
    manager.next_sequence_ = std::max(manager.next_sequence_, seq + 1);
  }
  return manager;
}

std::vector<std::string> CheckpointManager::ListCheckpoints() const {
  struct Entry {
    uint64_t seq;
    std::string path;
  };
  std::vector<Entry> entries;
  std::error_code ec;
  for (const auto& dirent : fs::directory_iterator(options_.directory, ec)) {
    if (ec) break;
    const fs::path& p = dirent.path();
    if (p.extension() != kFileSuffix) continue;
    const std::string stem = p.stem().string();
    if (stem.rfind(options_.basename + "-", 0) != 0) continue;
    const std::string seq_text = stem.substr(options_.basename.size() + 1);
    if (seq_text.empty() ||
        seq_text.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    entries.push_back({std::strtoull(seq_text.c_str(), nullptr, 10),
                       p.string()});
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.seq > b.seq; });
  std::vector<std::string> paths;
  paths.reserve(entries.size());
  for (Entry& e : entries) paths.push_back(std::move(e.path));
  return paths;
}

Status CheckpointManager::Save(const StreamSummarizer& summarizer,
                               uint64_t cursor) {
  UDM_TRACE_SPAN("checkpoint.save");
  Stopwatch watch;
  Status status = RetryWithPolicy(
      options_.retry,
      [this, &summarizer, cursor]() { return SaveOnce(summarizer, cursor); },
      &last_retry_stats_);
  auto& registry = obs::MetricsRegistry::Global();
  static obs::Histogram& latency =
      registry.GetHistogram("checkpoint.save.seconds");
  latency.Record(watch.ElapsedSeconds());
  if (last_retry_stats_.attempts > 1) {
    static obs::Counter& retries =
        registry.GetCounter("checkpoint.save.retries");
    retries.Increment(last_retry_stats_.attempts - 1);
  }
  if (!status.ok()) {
    static obs::Counter& failures =
        registry.GetCounter("checkpoint.save.failures");
    failures.Increment();
  }
  return status;
}

Status CheckpointManager::SaveOnce(const StreamSummarizer& summarizer,
                                   uint64_t cursor) {
  if (options_.io_faults != nullptr && options_.io_faults->ConsumeIoFault()) {
    return Status::IoError(
        "CheckpointManager: injected transient I/O fault (save)");
  }
  const std::string payload = SerializeCheckpoint(summarizer, cursor);
  const fs::path dir(options_.directory);
  const std::string name =
      options_.basename + "-" + std::to_string(next_sequence_);
  const fs::path tmp = dir / (name + ".tmp");
  const fs::path final_path = dir / (name + kFileSuffix);

  // Torn-write injection: commit a truncated generation at the final path
  // — the file a crash-after-rename-before-data-flush leaves behind — and
  // report failure. The sequence still advances (the corrupt file occupies
  // it), so recovery must CRC-reject this generation and fall back.
  if (options_.io_faults != nullptr &&
      options_.io_faults->ConsumeTornWrite()) {
    std::ofstream torn(final_path, std::ios::binary | std::ios::trunc);
    torn << std::string_view(payload).substr(0, payload.size() / 2);
    torn.flush();
    ++next_sequence_;
    return Status::IoError(
        "CheckpointManager: injected torn write (truncated generation "
        "committed at '" + final_path.string() + "')");
  }

  UDM_RETURN_IF_ERROR(WriteFileDurably(tmp.string(), payload));
  std::error_code ec;
  fs::rename(tmp, final_path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return Status::IoError("CheckpointManager: rename to '" +
                           final_path.string() + "' failed");
  }
  // The rename only exists once the parent directory's inode is on disk;
  // without this a recovered shard can find its newest checkpoint vanished
  // after a simulated crash (tested in checkpoint_test.cc).
  UDM_RETURN_IF_ERROR(FsyncDirectory(options_.directory));
  ++next_sequence_;
  // Prune only after the new generation is durable.
  const std::vector<std::string> existing = ListCheckpoints();
  for (size_t i = options_.max_keep; i < existing.size(); ++i) {
    fs::remove(existing[i], ec);
  }
  return Status::OK();
}

Result<CheckpointManager::Restored> CheckpointManager::RestoreLatest() const {
  UDM_TRACE_SPAN("checkpoint.restore");
  Stopwatch watch;
  Result<Restored> out =
      Status::Internal("CheckpointManager: restore never attempted");
  const Status final_status = RetryWithPolicy(options_.retry, [this, &out]() {
    out = RestoreOnce();
    return out.status();
  });
  (void)final_status;  // identical to out.status() by construction
  static obs::Histogram& latency =
      obs::MetricsRegistry::Global().GetHistogram("checkpoint.restore.seconds");
  latency.Record(watch.ElapsedSeconds());
  return out;
}

Result<CheckpointManager::Restored> CheckpointManager::RestoreOnce() const {
  if (options_.io_faults != nullptr && options_.io_faults->ConsumeIoFault()) {
    return Status::IoError(
        "CheckpointManager: injected transient I/O fault (restore)");
  }
  const std::vector<std::string> candidates = ListCheckpoints();
  if (candidates.empty()) {
    return Status::NotFound("CheckpointManager: no checkpoint in '" +
                            options_.directory + "'");
  }
  Status last_error = Status::OK();
  size_t fallbacks = 0;
  for (const std::string& path : candidates) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      last_error = Status::IoError("cannot open '" + path + "'");
      ++fallbacks;
      continue;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::string text = buffer.str();
    // Short-read injection: this read observed only a prefix of the file.
    // The CRC footer turns that into a detected corruption, so the walk
    // falls back to the next generation instead of restoring garbage.
    if (options_.io_faults != nullptr &&
        options_.io_faults->ConsumeShortRead()) {
      text.resize(text.size() / 2);
    }
    Result<DecodedCheckpoint> decoded = DeserializeCheckpoint(text);
    if (!decoded.ok()) {
      last_error = decoded.status().WithContext(path);
      ++fallbacks;
      continue;
    }
    Result<StreamSummarizer> summarizer =
        StreamSummarizer::FromState(std::move(decoded->state));
    if (!summarizer.ok()) {
      last_error = summarizer.status().WithContext(path);
      ++fallbacks;
      continue;
    }
    return Restored{std::move(summarizer).value(), decoded->cursor, path,
                    fallbacks};
  }
  return last_error.WithContext(
      "CheckpointManager: every checkpoint in the rotation is unusable");
}

}  // namespace udm
