#include "error/transform.h"

#include <cmath>

namespace udm {

Result<Standardizer> Standardizer::FitZScore(const Dataset& data) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("FitZScore: empty dataset");
  }
  const std::vector<DimensionStats> stats = data.ComputeStats();
  std::vector<double> offsets(data.NumDims());
  std::vector<double> scales(data.NumDims());
  for (size_t j = 0; j < data.NumDims(); ++j) {
    offsets[j] = stats[j].mean;
    scales[j] = stats[j].stddev > 0.0 ? stats[j].stddev : 1.0;
  }
  return Standardizer(std::move(offsets), std::move(scales));
}

Result<Standardizer> Standardizer::FitMinMax(const Dataset& data) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("FitMinMax: empty dataset");
  }
  const std::vector<DimensionStats> stats = data.ComputeStats();
  std::vector<double> offsets(data.NumDims());
  std::vector<double> scales(data.NumDims());
  for (size_t j = 0; j < data.NumDims(); ++j) {
    offsets[j] = stats[j].min;
    const double range = stats[j].max - stats[j].min;
    scales[j] = range > 0.0 ? range : 1.0;
  }
  return Standardizer(std::move(offsets), std::move(scales));
}

Result<Dataset> Standardizer::Apply(const Dataset& data) const {
  if (data.NumDims() != num_dims()) {
    return Status::InvalidArgument("Standardizer::Apply: dimension mismatch");
  }
  UDM_ASSIGN_OR_RETURN(Dataset out,
                       Dataset::Create(data.NumDims(), data.dim_names()));
  out.Reserve(data.NumRows());
  std::vector<double> row(data.NumDims());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto src = data.Row(i);
    for (size_t j = 0; j < data.NumDims(); ++j) {
      row[j] = (src[j] - offsets_[j]) / scales_[j];
    }
    UDM_RETURN_IF_ERROR(out.AppendRow(row, data.Label(i)));
  }
  return out;
}

Result<Dataset> Standardizer::Invert(const Dataset& data) const {
  if (data.NumDims() != num_dims()) {
    return Status::InvalidArgument(
        "Standardizer::Invert: dimension mismatch");
  }
  UDM_ASSIGN_OR_RETURN(Dataset out,
                       Dataset::Create(data.NumDims(), data.dim_names()));
  out.Reserve(data.NumRows());
  std::vector<double> row(data.NumDims());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto src = data.Row(i);
    for (size_t j = 0; j < data.NumDims(); ++j) {
      row[j] = src[j] * scales_[j] + offsets_[j];
    }
    UDM_RETURN_IF_ERROR(out.AppendRow(row, data.Label(i)));
  }
  return out;
}

Result<ErrorModel> Standardizer::TransformErrors(
    const ErrorModel& errors) const {
  if (errors.NumDims() != num_dims()) {
    return Status::InvalidArgument(
        "Standardizer::TransformErrors: dimension mismatch");
  }
  std::vector<double> table;
  table.reserve(errors.NumRows() * errors.NumDims());
  for (size_t i = 0; i < errors.NumRows(); ++i) {
    const auto row = errors.RowPsi(i);
    for (size_t j = 0; j < errors.NumDims(); ++j) {
      table.push_back(row[j] / scales_[j]);
    }
  }
  return ErrorModel::FromTable(errors.NumRows(), errors.NumDims(),
                               std::move(table));
}

}  // namespace udm
