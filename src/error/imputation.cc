#include "error/imputation.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/random.h"

namespace udm {

namespace {

struct ObservedStats {
  double mean = 0.0;
  double stddev = 0.0;
  size_t count = 0;
};

/// Mean/std over the non-missing entries of each dimension.
std::vector<ObservedStats> ComputeObservedStats(const Dataset& data) {
  const size_t d = data.NumDims();
  std::vector<ObservedStats> stats(d);
  std::vector<double> sums(d, 0.0);
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      if (IsMissing(row[j])) continue;
      sums[j] += row[j];
      ++stats[j].count;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    if (stats[j].count > 0) {
      stats[j].mean = sums[j] / static_cast<double>(stats[j].count);
    }
  }
  std::vector<double> sq(d, 0.0);
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      if (IsMissing(row[j])) continue;
      const double dev = row[j] - stats[j].mean;
      sq[j] += dev * dev;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    if (stats[j].count > 0) {
      stats[j].stddev = std::sqrt(sq[j] / static_cast<double>(stats[j].count));
    }
  }
  return stats;
}

/// Standardized distance over dimensions observed in both rows; returns
/// false when no dimension is co-observed.
bool CoObservedDistance(std::span<const double> a, std::span<const double> b,
                        const std::vector<ObservedStats>& stats,
                        double* distance) {
  double sum = 0.0;
  size_t shared = 0;
  for (size_t j = 0; j < a.size(); ++j) {
    if (IsMissing(a[j]) || IsMissing(b[j])) continue;
    const double scale = stats[j].stddev > 0.0 ? stats[j].stddev : 1.0;
    const double diff = (a[j] - b[j]) / scale;
    sum += diff * diff;
    ++shared;
  }
  if (shared == 0) return false;
  // Normalize by the co-observed count so rows with many shared dims are
  // comparable to rows with few.
  *distance = sum / static_cast<double>(shared);
  return true;
}

}  // namespace

Result<UncertainDataset> ImputeMissing(const Dataset& data,
                                       const ImputationOptions& options,
                                       ImputationReport* report) {
  const size_t n = data.NumRows();
  const size_t d = data.NumDims();
  if (n == 0) return Status::InvalidArgument("ImputeMissing: empty dataset");
  if (options.method == ImputationMethod::kKnn && options.k < 2) {
    return Status::InvalidArgument("ImputeMissing: kKnn needs k >= 2");
  }

  const std::vector<ObservedStats> stats = ComputeObservedStats(data);
  for (size_t j = 0; j < d; ++j) {
    if (stats[j].count == 0) {
      return Status::FailedPrecondition(
          "ImputeMissing: dimension " + std::to_string(j) +
          " has no observed values");
    }
  }
  ImputationReport local_report;
  UDM_ASSIGN_OR_RETURN(Dataset filled, Dataset::Create(d, data.dim_names()));
  filled.Reserve(n);
  std::vector<double> psi_table(n * d, 0.0);
  std::vector<double> out_row(d);

  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      if (!IsMissing(row[j])) {
        out_row[j] = row[j];
        continue;
      }
      ++local_report.missing_entries;
      bool used_knn = false;
      if (options.method == ImputationMethod::kKnn) {
        // Candidate donors: rows with dimension j observed, ranked by
        // co-observed standardized distance to row i.
        std::vector<std::pair<double, double>> donors;  // (distance, value)
        for (size_t other = 0; other < n; ++other) {
          if (other == i) continue;
          const auto other_row = data.Row(other);
          if (IsMissing(other_row[j])) continue;
          double distance = 0.0;
          if (!CoObservedDistance(row, other_row, stats, &distance)) continue;
          donors.emplace_back(distance, other_row[j]);
        }
        if (donors.size() >= options.k) {
          std::partial_sort(donors.begin(), donors.begin() + options.k,
                            donors.end());
          double sum = 0.0;
          for (size_t t = 0; t < options.k; ++t) sum += donors[t].second;
          const double mean = sum / static_cast<double>(options.k);
          double sq = 0.0;
          for (size_t t = 0; t < options.k; ++t) {
            const double dev = donors[t].second - mean;
            sq += dev * dev;
          }
          out_row[j] = mean;
          // Sample std-dev of the donor values: the a-priori error of
          // this particular imputation.
          psi_table[i * d + j] =
              std::sqrt(sq / static_cast<double>(options.k - 1));
          ++local_report.knn_imputed;
          used_knn = true;
        }
      }
      if (!used_knn) {
        out_row[j] = stats[j].mean;
        psi_table[i * d + j] = stats[j].stddev;
        ++local_report.mean_imputed;
      }
    }
    UDM_RETURN_IF_ERROR(filled.AppendRow(out_row, data.Label(i)));
  }

  if (report != nullptr) *report = local_report;
  UDM_ASSIGN_OR_RETURN(ErrorModel errors,
                       ErrorModel::FromTable(n, d, std::move(psi_table)));
  return UncertainDataset{std::move(filled), std::move(errors)};
}

Result<Dataset> MaskCompletelyAtRandom(const Dataset& data,
                                       double missing_fraction, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("MaskCompletelyAtRandom: null rng");
  }
  if (missing_fraction < 0.0 || missing_fraction >= 1.0) {
    return Status::InvalidArgument(
        "MaskCompletelyAtRandom: fraction must be in [0, 1)");
  }
  UDM_ASSIGN_OR_RETURN(Dataset masked,
                       Dataset::Create(data.NumDims(), data.dim_names()));
  masked.Reserve(data.NumRows());
  std::vector<double> row(data.NumDims());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto src = data.Row(i);
    for (size_t j = 0; j < data.NumDims(); ++j) {
      row[j] = rng->Uniform() < missing_fraction ? kMissingValue : src[j];
    }
    UDM_RETURN_IF_ERROR(masked.AppendRow(row, data.Label(i)));
  }
  return masked;
}

}  // namespace udm
