#include "error/interval.h"

#include <cmath>
#include <vector>

#include "common/random.h"

namespace udm {

namespace {
// Standard deviation of U[lo, hi] is (hi - lo) / sqrt(12).
constexpr double kInvSqrt12 = 0.28867513459481287;
}  // namespace

Result<UncertainDataset> FromIntervals(const Dataset& lo, const Dataset& hi) {
  const size_t n = lo.NumRows();
  const size_t d = lo.NumDims();
  if (hi.NumRows() != n || hi.NumDims() != d) {
    return Status::InvalidArgument("FromIntervals: shape mismatch");
  }
  if (n == 0) return Status::InvalidArgument("FromIntervals: empty input");

  UDM_ASSIGN_OR_RETURN(Dataset mid, Dataset::Create(d, lo.dim_names()));
  mid.Reserve(n);
  std::vector<double> psi_table(n * d, 0.0);
  std::vector<double> row(d);
  for (size_t i = 0; i < n; ++i) {
    if (lo.Label(i) != hi.Label(i)) {
      return Status::InvalidArgument("FromIntervals: label mismatch at row " +
                                     std::to_string(i));
    }
    for (size_t j = 0; j < d; ++j) {
      const double a = lo.Value(i, j);
      const double b = hi.Value(i, j);
      if (!(a <= b)) {
        return Status::InvalidArgument(
            "FromIntervals: lo > hi at (" + std::to_string(i) + ", " +
            std::to_string(j) + ")");
      }
      row[j] = 0.5 * (a + b);
      psi_table[i * d + j] = (b - a) * kInvSqrt12;
    }
    UDM_RETURN_IF_ERROR(mid.AppendRow(row, lo.Label(i)));
  }
  UDM_ASSIGN_OR_RETURN(ErrorModel errors,
                       ErrorModel::FromTable(n, d, std::move(psi_table)));
  return UncertainDataset{std::move(mid), std::move(errors)};
}

Result<IntervalPair> GeneralizeToIntervals(const Dataset& data,
                                           double width_in_sigmas, Rng* rng) {
  if (rng == nullptr) {
    return Status::InvalidArgument("GeneralizeToIntervals: null rng");
  }
  if (width_in_sigmas < 0.0) {
    return Status::InvalidArgument(
        "GeneralizeToIntervals: negative interval width");
  }
  const size_t n = data.NumRows();
  const size_t d = data.NumDims();
  const std::vector<DimensionStats> stats = data.ComputeStats();

  UDM_ASSIGN_OR_RETURN(Dataset lo, Dataset::Create(d, data.dim_names()));
  UDM_ASSIGN_OR_RETURN(Dataset hi, Dataset::Create(d, data.dim_names()));
  lo.Reserve(n);
  hi.Reserve(n);
  std::vector<double> lo_row(d);
  std::vector<double> hi_row(d);
  for (size_t i = 0; i < n; ++i) {
    const auto row = data.Row(i);
    for (size_t j = 0; j < d; ++j) {
      // Per-entry width ~ U[0, 2·w]·σ: generalization granularity differs
      // across records, so the recorded ψ varies entry by entry.
      const double width =
          rng->Uniform(0.0, 2.0 * width_in_sigmas) * stats[j].stddev;
      // The true value sits uniformly inside the published interval.
      const double offset = rng->Uniform() * width;
      lo_row[j] = row[j] - offset;
      hi_row[j] = lo_row[j] + width;
    }
    UDM_RETURN_IF_ERROR(lo.AppendRow(lo_row, data.Label(i)));
    UDM_RETURN_IF_ERROR(hi.AppendRow(hi_row, data.Label(i)));
  }
  return IntervalPair{std::move(lo), std::move(hi)};
}

}  // namespace udm
