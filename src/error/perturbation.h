#ifndef UDM_ERROR_PERTURBATION_H_
#define UDM_ERROR_PERTURBATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"

namespace udm {

/// A dataset whose entries carry quantified uncertainty: the noisy values
/// together with their per-entry error estimates ψ. This is the input type
/// of everything downstream (error-based KDE, micro-clustering, the
/// classifier); consumers never see the clean values.
struct UncertainDataset {
  Dataset data;       ///< the (noisy) observed values
  ErrorModel errors;  ///< ψ_j(X_i) table aligned with `data`
};

/// The paper's §4 error-injection protocol:
///
///   "errors were added to the data set from a normal distribution with
///    zero mean, and a standard deviation whose parameter was chosen as
///    follows. For each entry, the standard deviation parameter of the
///    normal distribution was chosen from a uniform distribution in the
///    range [0, 2·f]·σ, where σ is the standard deviation of that dimension
///    in the underlying data."
///
/// So at f the *average* injected error is f standard deviations, and at
/// f=3 the majority of entries are distorted by up to 3σ.
struct PerturbationOptions {
  /// The error level knob f (>= 0). f=0 injects nothing.
  double f = 1.0;
  /// RNG seed; (clean data, options) deterministically define the output.
  uint64_t seed = 7;
  /// When false, the returned ErrorModel is all-zero even though noise was
  /// injected — simulating a pipeline that has errors but no estimates of
  /// them (the paper's "no error adjustment" comparator sees exactly this).
  bool record_errors = true;
};

/// Applies the protocol to `clean`, returning noisy values plus the ψ table
/// (the σ actually used per entry — the error *estimate* the miner is
/// assumed to know, §1). Labels are preserved.
Result<UncertainDataset> Perturb(const Dataset& clean,
                                 const PerturbationOptions& options);

/// Estimates an UncertainDataset from replicated measurements: the value is
/// the per-entry mean and ψ is the per-entry sample standard deviation of
/// the replicates (the paper's §1 "error of data collection can be
/// estimated by prior experimentation"). All replicates must have the same
/// shape and labels.
Result<UncertainDataset> EstimateFromReplicates(
    const std::vector<Dataset>& replicates);

}  // namespace udm

#endif  // UDM_ERROR_PERTURBATION_H_
