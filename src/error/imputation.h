#ifndef UDM_ERROR_IMPUTATION_H_
#define UDM_ERROR_IMPUTATION_H_

#include <cstdint>
#include <limits>

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/perturbation.h"

namespace udm {

class Rng;

/// Missing-data support (paper §1: "In the case of missing data,
/// imputation procedures can be used [10] to estimate the missing values.
/// If such procedures are used, then the statistical error of imputation
/// for a given entry is often known a-priori.").
///
/// Missing entries are represented as NaN inside a regular Dataset. The
/// imputers below fill them in AND return the per-entry error estimate ψ
/// of each imputation — producing exactly the UncertainDataset that the
/// rest of the library consumes. Observed entries get ψ = 0 (combine with
/// measurement-error models separately if both apply).

/// The NaN sentinel for a missing entry.
inline constexpr double kMissingValue =
    std::numeric_limits<double>::quiet_NaN();

/// True iff the entry is the missing sentinel.
inline bool IsMissing(double value) { return value != value; }

enum class ImputationMethod {
  /// Fill with the dimension's observed mean; ψ = observed std-dev of the
  /// dimension (the error of predicting an entry by its marginal mean).
  kMean,
  /// Fill with the mean of the k nearest neighbors (distance over
  /// co-observed dimensions, standardized per dimension); ψ = the sample
  /// std-dev of those neighbor values — an instance-specific error
  /// estimate. Falls back to kMean when too few usable neighbors exist.
  kKnn,
};

struct ImputationOptions {
  ImputationMethod method = ImputationMethod::kKnn;
  /// Neighbor count for kKnn (>= 2 so a spread is estimable).
  size_t k = 5;
};

/// Statistics of an imputation pass.
struct ImputationReport {
  size_t missing_entries = 0;
  size_t knn_imputed = 0;   ///< filled from neighbors
  size_t mean_imputed = 0;  ///< filled from the marginal (incl. fallbacks)
};

/// Imputes every missing entry of `data`. Requires every dimension to
/// have at least one observed value. Rows with nothing observed fall back
/// to marginal-mean imputation on every entry (kNN has no co-observed
/// dimensions to match on). Labels pass through. `report` (optional)
/// receives counts.
Result<UncertainDataset> ImputeMissing(const Dataset& data,
                                       const ImputationOptions& options = {},
                                       ImputationReport* report = nullptr);

/// Testing/demo helper: knocks out each entry independently with
/// probability `missing_fraction` (missing completely at random).
Result<Dataset> MaskCompletelyAtRandom(const Dataset& data,
                                       double missing_fraction, Rng* rng);

}  // namespace udm

#endif  // UDM_ERROR_IMPUTATION_H_
