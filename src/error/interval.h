#ifndef UDM_ERROR_INTERVAL_H_
#define UDM_ERROR_INTERVAL_H_

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/perturbation.h"

namespace udm {

/// Interval-censored data (paper §1: "in many applications, the data is
/// available only on a partially aggregated basis", and §2's k-anonymity
/// reading where ψ is "the standard deviation of the partially specified
/// fields"). An entry known only to lie in [lo, hi] is represented by its
/// midpoint with ψ = (hi − lo)/√12 — the standard deviation of the
/// uniform distribution over the interval. Exactly-known entries have
/// lo == hi and get ψ = 0.
///
/// `lo` and `hi` must have identical shape and labels, with
/// lo(i,j) <= hi(i,j) everywhere.
Result<UncertainDataset> FromIntervals(const Dataset& lo, const Dataset& hi);

/// Testing/demo helper: generalizes each entry of `data` into an interval
/// whose width is drawn per entry from U[0, 2·width]·σ_dim (mean width =
/// `width` sigmas — mirroring the heterogeneity of real generalization
/// lattices, where different equivalence classes coarsen differently) and
/// positioned so the true value is uniformly placed inside. Returns the
/// (lo, hi) pair.
struct IntervalPair {
  Dataset lo;
  Dataset hi;
};

class Rng;

Result<IntervalPair> GeneralizeToIntervals(const Dataset& data,
                                           double width_in_sigmas, Rng* rng);

}  // namespace udm

#endif  // UDM_ERROR_INTERVAL_H_
