#include "error/perturbation.h"

#include <cmath>

#include "common/random.h"

namespace udm {

Result<UncertainDataset> Perturb(const Dataset& clean,
                                 const PerturbationOptions& options) {
  if (options.f < 0.0) {
    return Status::InvalidArgument("Perturb: f must be >= 0");
  }
  const size_t n = clean.NumRows();
  const size_t d = clean.NumDims();
  const std::vector<DimensionStats> stats = clean.ComputeStats();

  Rng rng(options.seed);
  UDM_ASSIGN_OR_RETURN(Dataset noisy, Dataset::Create(d, clean.dim_names()));
  noisy.Reserve(n);
  std::vector<double> psi_table(n * d, 0.0);
  std::vector<double> row(d);

  for (size_t i = 0; i < n; ++i) {
    const auto src = clean.Row(i);
    for (size_t j = 0; j < d; ++j) {
      // Per-entry error std-dev ~ U[0, 2f] * sigma_j  (mean = f * sigma_j).
      const double sd = rng.Uniform(0.0, 2.0 * options.f) * stats[j].stddev;
      row[j] = src[j] + (sd > 0.0 ? rng.Gaussian(0.0, sd) : 0.0);
      if (options.record_errors) psi_table[i * d + j] = sd;
    }
    UDM_RETURN_IF_ERROR(noisy.AppendRow(row, clean.Label(i)));
  }

  UDM_ASSIGN_OR_RETURN(ErrorModel errors,
                       ErrorModel::FromTable(n, d, std::move(psi_table)));
  return UncertainDataset{std::move(noisy), std::move(errors)};
}

Result<UncertainDataset> EstimateFromReplicates(
    const std::vector<Dataset>& replicates) {
  if (replicates.size() < 2) {
    return Status::InvalidArgument(
        "EstimateFromReplicates: need at least 2 replicates");
  }
  const size_t n = replicates[0].NumRows();
  const size_t d = replicates[0].NumDims();
  for (const Dataset& r : replicates) {
    if (r.NumRows() != n || r.NumDims() != d) {
      return Status::InvalidArgument(
          "EstimateFromReplicates: replicate shape mismatch");
    }
    for (size_t i = 0; i < n; ++i) {
      if (r.Label(i) != replicates[0].Label(i)) {
        return Status::InvalidArgument(
            "EstimateFromReplicates: replicate label mismatch");
      }
    }
  }

  const double m = static_cast<double>(replicates.size());
  UDM_ASSIGN_OR_RETURN(Dataset mean_data,
                       Dataset::Create(d, replicates[0].dim_names()));
  mean_data.Reserve(n);
  std::vector<double> psi_table(n * d, 0.0);
  std::vector<double> row(d);

  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < d; ++j) {
      double sum = 0.0;
      for (const Dataset& r : replicates) sum += r.Value(i, j);
      const double mean = sum / m;
      double sq = 0.0;
      for (const Dataset& r : replicates) {
        const double dev = r.Value(i, j) - mean;
        sq += dev * dev;
      }
      row[j] = mean;
      // Sample std-dev of the replicate values: the ψ estimate. The error
      // of the *mean* would divide by sqrt(m); we report the measurement
      // error, matching the paper's "standard deviation of the
      // observations over a large number of measurements".
      psi_table[i * d + j] = std::sqrt(sq / (m - 1.0));
    }
    UDM_RETURN_IF_ERROR(mean_data.AppendRow(row, replicates[0].Label(i)));
  }

  UDM_ASSIGN_OR_RETURN(ErrorModel errors,
                       ErrorModel::FromTable(n, d, std::move(psi_table)));
  return UncertainDataset{std::move(mean_data), std::move(errors)};
}

}  // namespace udm
