#ifndef UDM_ERROR_TRANSFORM_H_
#define UDM_ERROR_TRANSFORM_H_

#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"

namespace udm {

/// Per-dimension affine standardization fitted on one dataset and applied
/// to others (train-fit, test-apply). Two uses in this library:
///
///  * the 1-NN baseline is scale-sensitive, so heterogeneous raw features
///    (an income next to an age) deserve standardization before it;
///  * ψ values are *scales*, so an ErrorModel must be transformed in
///    lockstep with its dataset — TransformErrors does exactly that.
///
/// The density machinery itself is scale-equivariant (per-dimension
/// Silverman bandwidths), so standardization does not change its results —
/// a property the test suite checks.
class Standardizer {
 public:
  /// Fits mean/σ per dimension (z-score). Constant dimensions get scale 1.
  static Result<Standardizer> FitZScore(const Dataset& data);

  /// Fits min/range per dimension ([0, 1] scaling). Constant dimensions
  /// get scale 1.
  static Result<Standardizer> FitMinMax(const Dataset& data);

  /// Applies the fitted transform: value' = (value - offset_j) / scale_j.
  Result<Dataset> Apply(const Dataset& data) const;

  /// Inverts a previously applied transform.
  Result<Dataset> Invert(const Dataset& data) const;

  /// Transforms an error table alongside its dataset: ψ' = ψ / scale_j
  /// (errors are scales; offsets do not apply).
  Result<ErrorModel> TransformErrors(const ErrorModel& errors) const;

  size_t num_dims() const { return offsets_.size(); }
  const std::vector<double>& offsets() const { return offsets_; }
  const std::vector<double>& scales() const { return scales_; }

 private:
  Standardizer(std::vector<double> offsets, std::vector<double> scales)
      : offsets_(std::move(offsets)), scales_(std::move(scales)) {}

  std::vector<double> offsets_;
  std::vector<double> scales_;  // strictly positive
};

}  // namespace udm

#endif  // UDM_ERROR_TRANSFORM_H_
