#ifndef UDM_ERROR_ERROR_MODEL_H_
#define UDM_ERROR_ERROR_MODEL_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// The per-entry error table ψ_j(X_i) of the paper (§2): for every row i and
/// dimension j, the estimated standard deviation of the measurement error of
/// that entry. An ErrorModel is always aligned with a specific Dataset
/// (same N, same d) and must be selected/projected in lockstep with it.
///
/// The paper's most general assumption — "the error is defined by both the
/// row and the field" — is the representation here; the common special cases
/// (per-dimension error, zero error) are factories.
class ErrorModel {
 public:
  /// All-zero errors (the "no error information" case; §4 comparator (2)).
  static ErrorModel Zero(size_t num_rows, size_t num_dims);

  /// Same error for every row, given per-dimension sigmas.
  static Result<ErrorModel> PerDimension(size_t num_rows,
                                         std::span<const double> dim_sigmas);

  /// Fully general table; `table` is row-major with num_rows*num_dims
  /// non-negative entries.
  static Result<ErrorModel> FromTable(size_t num_rows, size_t num_dims,
                                      std::vector<double> table);

  size_t NumRows() const { return num_rows_; }
  size_t NumDims() const { return num_dims_; }

  /// ψ_j(X_i): the error std-dev of entry (row, dim).
  double Psi(size_t row, size_t dim) const {
    UDM_DCHECK(row < num_rows_ && dim < num_dims_);
    return table_[row * num_dims_ + dim];
  }

  /// Overwrites one entry (value must be >= 0).
  void SetPsi(size_t row, size_t dim, double value) {
    UDM_DCHECK(row < num_rows_ && dim < num_dims_);
    UDM_DCHECK(value >= 0.0);
    table_[row * num_dims_ + dim] = value;
  }

  /// The error vector ψ(X_i) of row i.
  std::span<const double> RowPsi(size_t row) const {
    UDM_DCHECK(row < num_rows_);
    return {table_.data() + row * num_dims_, num_dims_};
  }

  /// Rows at `indices`, aligned with Dataset::Select.
  ErrorModel Select(std::span<const size_t> indices) const;

  /// Dimensions at `dims`, aligned with Dataset::ProjectDims.
  Result<ErrorModel> ProjectDims(std::span<const size_t> dims) const;

  /// True iff every entry is exactly zero.
  bool IsZero() const;

 private:
  ErrorModel(size_t num_rows, size_t num_dims, std::vector<double> table)
      : num_rows_(num_rows), num_dims_(num_dims), table_(std::move(table)) {}

  size_t num_rows_;
  size_t num_dims_;
  std::vector<double> table_;  // row-major ψ values, >= 0
};

}  // namespace udm

#endif  // UDM_ERROR_ERROR_MODEL_H_
