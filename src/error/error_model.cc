#include "error/error_model.h"

namespace udm {

ErrorModel ErrorModel::Zero(size_t num_rows, size_t num_dims) {
  return ErrorModel(num_rows, num_dims,
                    std::vector<double>(num_rows * num_dims, 0.0));
}

Result<ErrorModel> ErrorModel::PerDimension(size_t num_rows,
                                            std::span<const double> dim_sigmas) {
  if (dim_sigmas.empty()) {
    return Status::InvalidArgument("PerDimension: empty sigma vector");
  }
  for (double s : dim_sigmas) {
    if (s < 0.0) {
      return Status::InvalidArgument("PerDimension: negative sigma");
    }
  }
  std::vector<double> table;
  table.reserve(num_rows * dim_sigmas.size());
  for (size_t i = 0; i < num_rows; ++i) {
    table.insert(table.end(), dim_sigmas.begin(), dim_sigmas.end());
  }
  return ErrorModel(num_rows, dim_sigmas.size(), std::move(table));
}

Result<ErrorModel> ErrorModel::FromTable(size_t num_rows, size_t num_dims,
                                         std::vector<double> table) {
  if (num_dims == 0) {
    return Status::InvalidArgument("FromTable: num_dims == 0");
  }
  if (table.size() != num_rows * num_dims) {
    return Status::InvalidArgument("FromTable: table size mismatch");
  }
  for (double v : table) {
    if (v < 0.0) return Status::InvalidArgument("FromTable: negative entry");
  }
  return ErrorModel(num_rows, num_dims, std::move(table));
}

ErrorModel ErrorModel::Select(std::span<const size_t> indices) const {
  std::vector<double> table;
  table.reserve(indices.size() * num_dims_);
  for (size_t idx : indices) {
    UDM_DCHECK(idx < num_rows_) << "Select index out of range";
    table.insert(table.end(), table_.begin() + idx * num_dims_,
                 table_.begin() + (idx + 1) * num_dims_);
  }
  return ErrorModel(indices.size(), num_dims_, std::move(table));
}

Result<ErrorModel> ErrorModel::ProjectDims(std::span<const size_t> dims) const {
  if (dims.empty()) {
    return Status::InvalidArgument("ProjectDims: empty dimension set");
  }
  for (size_t dim : dims) {
    if (dim >= num_dims_) {
      return Status::OutOfRange("ProjectDims: dimension out of range");
    }
  }
  std::vector<double> table;
  table.reserve(num_rows_ * dims.size());
  for (size_t i = 0; i < num_rows_; ++i) {
    for (size_t dim : dims) table.push_back(table_[i * num_dims_ + dim]);
  }
  return ErrorModel(num_rows_, dims.size(), std::move(table));
}

bool ErrorModel::IsZero() const {
  for (double v : table_) {
    if (v != 0.0) return false;
  }
  return true;
}

}  // namespace udm
