#include "microcluster/distance.h"

#include <algorithm>

#include "common/logging.h"
#include "common/math_util.h"

namespace udm {

double ErrorAdjustedDistance(std::span<const double> point,
                             std::span<const double> psi,
                             std::span<const double> centroid) {
  UDM_DCHECK(point.size() == centroid.size() && point.size() == psi.size())
      << "ErrorAdjustedDistance: size mismatch";
  double sum = 0.0;
  for (size_t j = 0; j < point.size(); ++j) {
    const double diff = point[j] - centroid[j];
    sum += std::max(0.0, diff * diff - psi[j] * psi[j]);
  }
  return sum;
}

double AssignmentDistanceValue(AssignmentDistance distance,
                               std::span<const double> point,
                               std::span<const double> psi,
                               std::span<const double> centroid) {
  switch (distance) {
    case AssignmentDistance::kErrorAdjusted:
      return ErrorAdjustedDistance(point, psi, centroid);
    case AssignmentDistance::kEuclidean:
      return SquaredEuclidean(point, centroid);
  }
  return 0.0;
}

}  // namespace udm
