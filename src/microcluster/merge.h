#ifndef UDM_MICROCLUSTER_MERGE_H_
#define UDM_MICROCLUSTER_MERGE_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "microcluster/clusterer.h"
#include "microcluster/microcluster.h"

namespace udm {

/// Combining shard-local summaries into one global q-bounded summary.
///
/// The CFT tuple of Definition 1 is additive (Lemma 1): the statistics of
/// a union of point sets are the per-dimension sums of the parts'
/// statistics, so MicroCluster::Merge is exact — no information about the
/// underlying data is lost when two clusters combine. That is what makes
/// scale-out summarization sound: K shards can each run the paper's
/// one-pass maintenance independently, and their summaries merge into a
/// model with the same semantics as a monolithic pass, up to the (already
/// approximate) cluster-assignment decisions.
///
/// MergeSummaries applies the monolithic maintenance rules to the shard
/// clusters treated as pseudo-points (the same reduction mc_density uses
/// for evaluation): each cluster acts as a point at its centroid c(C)
/// with error width Δ_j(C), weighted by its population.
///
///  * If the combined cluster count fits the budget q, every cluster is
///    kept as-is (the merge is then exactly lossless).
///  * Otherwise the q most populous clusters seed the merged summary
///    (deterministic tie-break on input order), and every remaining
///    cluster is absorbed into the seed with the nearest centroid under
///    the configured assignment distance — kErrorAdjusted uses Eq. 5 with
///    ψ_j = Δ_j(C), mirroring how the monolithic path assigns points.
///
/// The operation is deterministic for a given input order, preserves the
/// total point count exactly, and preserves the aggregate CF1/CF2/EF2
/// sums to floating-point rounding regardless of how the inputs were
/// sharded (the associativity/commutativity property tested in
/// merge_summaries_test.cc).

/// One shard's summary, as a borrowed view.
using SummaryView = std::span<const MicroCluster>;

/// Merges `summaries` into at most `options.num_clusters` clusters over
/// `num_dims` dimensions. Empty input clusters are skipped; an entirely
/// empty input yields an empty summary. Fails on dimension mismatches.
Result<std::vector<MicroCluster>> MergeSummaries(
    std::span<const SummaryView> summaries, size_t num_dims,
    const MicroClusterer::Options& options = MicroClusterer::Options());

/// Two-summary convenience overload.
Result<std::vector<MicroCluster>> MergeSummaries(
    SummaryView a, SummaryView b, size_t num_dims,
    const MicroClusterer::Options& options = MicroClusterer::Options());

}  // namespace udm

#endif  // UDM_MICROCLUSTER_MERGE_H_
