#include "microcluster/clusterer.h"

#include <limits>

namespace udm {

Result<MicroClusterer> MicroClusterer::Create(size_t num_dims,
                                              const Options& options) {
  if (num_dims == 0) {
    return Status::InvalidArgument("MicroClusterer: num_dims == 0");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("MicroClusterer: num_clusters == 0");
  }
  return MicroClusterer(num_dims, options);
}

Result<MicroClusterer> MicroClusterer::FromClusters(
    size_t num_dims, const Options& options,
    std::vector<MicroCluster> clusters) {
  UDM_ASSIGN_OR_RETURN(MicroClusterer out, Create(num_dims, options));
  if (clusters.size() > options.num_clusters) {
    return Status::InvalidArgument(
        "MicroClusterer::FromClusters: " + std::to_string(clusters.size()) +
        " clusters exceed the budget of " +
        std::to_string(options.num_clusters));
  }
  out.centroids_.reserve(clusters.size() * num_dims);
  for (size_t c = 0; c < clusters.size(); ++c) {
    const MicroCluster& cluster = clusters[c];
    if (cluster.NumDims() != num_dims) {
      return Status::InvalidArgument(
          "MicroClusterer::FromClusters: cluster " + std::to_string(c) +
          " has " + std::to_string(cluster.NumDims()) + " dims, expected " +
          std::to_string(num_dims));
    }
    if (cluster.IsEmpty()) {
      return Status::InvalidArgument(
          "MicroClusterer::FromClusters: cluster " + std::to_string(c) +
          " is empty");
    }
    for (size_t j = 0; j < num_dims; ++j) {
      out.centroids_.push_back(cluster.Centroid(j));
    }
    out.num_points_ += cluster.Count();
  }
  out.clusters_ = std::move(clusters);
  return out;
}

size_t MicroClusterer::NearestCluster(std::span<const double> values,
                                      std::span<const double> psi) const {
  size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    const std::span<const double> centroid{centroids_.data() + c * num_dims_,
                                           num_dims_};
    const double dist =
        AssignmentDistanceValue(options_.distance, values, psi, centroid);
    if (dist < best_dist) {
      best_dist = dist;
      best = c;
    }
  }
  return best;
}

size_t MicroClusterer::Add(std::span<const double> values,
                           std::span<const double> psi) {
  UDM_CHECK(values.size() == num_dims_) << "Add: value size";
  UDM_CHECK(psi.size() == num_dims_) << "Add: psi size";
  ++num_points_;
  if (clusters_.size() < options_.num_clusters) {
    // Seeding phase: the first q points found their own clusters ("these q
    // centroids are chosen randomly" — a stream prefix is a random sample
    // in arrival order; no point is ever rejected).
    MicroCluster cluster(num_dims_);
    cluster.AddPoint(values, psi);
    clusters_.push_back(std::move(cluster));
    centroids_.insert(centroids_.end(), values.begin(), values.end());
    return clusters_.size() - 1;
  }
  const size_t c = NearestCluster(values, psi);
  clusters_[c].AddPoint(values, psi);
  const double n = static_cast<double>(clusters_[c].Count());
  double* centroid = centroids_.data() + c * num_dims_;
  for (size_t j = 0; j < num_dims_; ++j) {
    centroid[j] = clusters_[c].cf1()[j] / n;
  }
  return c;
}

Status MicroClusterer::AddDataset(const Dataset& data,
                                  const ErrorModel& errors) {
  if (data.NumDims() != num_dims_) {
    return Status::InvalidArgument("AddDataset: dimension mismatch");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument("AddDataset: error model shape mismatch");
  }
  for (size_t i = 0; i < data.NumRows(); ++i) {
    Add(data.Row(i), errors.RowPsi(i));
  }
  return Status::OK();
}

std::vector<MicroCluster> MicroClusterer::TakeClusters() {
  std::vector<MicroCluster> out = std::move(clusters_);
  clusters_.clear();
  centroids_.clear();
  num_points_ = 0;
  return out;
}

Result<std::vector<MicroCluster>> BuildMicroClusters(
    const Dataset& data, const ErrorModel& errors,
    const MicroClusterer::Options& options) {
  UDM_ASSIGN_OR_RETURN(MicroClusterer clusterer,
                       MicroClusterer::Create(data.NumDims(), options));
  UDM_RETURN_IF_ERROR(clusterer.AddDataset(data, errors));
  return clusterer.TakeClusters();
}

}  // namespace udm
