#ifndef UDM_MICROCLUSTER_CLUSTERER_H_
#define UDM_MICROCLUSTER_CLUSTERER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "microcluster/distance.h"
#include "microcluster/microcluster.h"

namespace udm {

/// One-pass maintenance of a fixed budget of error-based micro-clusters
/// (paper §2.1). The variation on CluStream [2] is deliberate and follows
/// the paper exactly:
///
///  * at most `q` clusters, seeded by the first q arriving points;
///  * every later point joins its *nearest* centroid under the
///    error-adjusted distance (Eq. 5) — new clusters are never created
///    after seeding and clusters are never discarded, so every data point
///    is reflected in the statistics;
///  * centroids are the running CF1x/n means.
///
/// O(q·d) per point; the summary (q clusters) lives in main memory so
/// densities can later be recomputed over arbitrary subspaces without
/// another data pass.
class MicroClusterer {
 public:
  struct Options {
    /// Cluster budget q (>= 1). The paper's experiments use 20..140.
    size_t num_clusters = 140;
    /// Assignment metric; kErrorAdjusted reproduces the paper.
    AssignmentDistance distance = AssignmentDistance::kErrorAdjusted;
  };

  /// Creates an empty clusterer for `num_dims`-dimensional points.
  static Result<MicroClusterer> Create(size_t num_dims,
                                       const Options& options);
  static Result<MicroClusterer> Create(size_t num_dims) {
    return Create(num_dims, Options());
  }

  /// Rebuilds a clusterer mid-stream from a previously built summary
  /// (checkpoint recovery): centroids are recomputed from the CF1 sums and
  /// num_points() resumes at the summary's total count. Clusters must all
  /// be non-empty, share `num_dims` dimensions, and fit the budget.
  static Result<MicroClusterer> FromClusters(size_t num_dims,
                                             const Options& options,
                                             std::vector<MicroCluster> clusters);

  /// Processes one point with its error vector ψ (both sized num_dims).
  /// Returns the index of the cluster that absorbed the point.
  size_t Add(std::span<const double> values, std::span<const double> psi);

  /// Bulk path: processes every row of `data` with errors from `errors`
  /// (shapes must match).
  Status AddDataset(const Dataset& data, const ErrorModel& errors);

  /// The current summary. Clusters are non-empty once seeded.
  std::span<const MicroCluster> clusters() const { return clusters_; }

  /// Moves the summary out (the clusterer is left empty/reusable).
  std::vector<MicroCluster> TakeClusters();

  /// Total points processed.
  uint64_t num_points() const { return num_points_; }

  size_t num_dims() const { return num_dims_; }

 private:
  MicroClusterer(size_t num_dims, const Options& options)
      : num_dims_(num_dims), options_(options) {}

  /// Index of the nearest centroid under the configured distance.
  size_t NearestCluster(std::span<const double> values,
                        std::span<const double> psi) const;

  size_t num_dims_;
  Options options_;
  std::vector<MicroCluster> clusters_;
  /// Cached centroids, row-major (clusters_.size() x num_dims_), kept in
  /// sync with the CF1x sums so assignment avoids divisions per candidate.
  std::vector<double> centroids_;
  uint64_t num_points_ = 0;
};

/// Convenience: builds the full summary for an uncertain dataset in one
/// call (the "training" step of the paper's classifier; timed by Figs. 8
/// and 11).
Result<std::vector<MicroCluster>> BuildMicroClusters(
    const Dataset& data, const ErrorModel& errors,
    const MicroClusterer::Options& options = MicroClusterer::Options());

}  // namespace udm

#endif  // UDM_MICROCLUSTER_CLUSTERER_H_
