#include "microcluster/serialize.h"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>
#include <string_view>

#include "common/crc32.h"

namespace udm {

namespace {

constexpr char kMagic[] = "udm-microclusters";
constexpr char kCrcKey[] = "crc32";

/// Sanity caps on the declared shape. Real summaries are a few hundred
/// clusters over tens of dimensions; anything near these bounds is a
/// corrupt or adversarial header, and honoring it would mean multi-GB
/// allocations before the first parse error fires.
constexpr size_t kMaxDims = 1u << 20;       // ~1M dimensions
constexpr size_t kMaxClusters = 1u << 22;   // ~4M clusters

/// Reads a strictly non-negative decimal integer. `in >> uint64_t` accepts
/// a leading '-' and wraps modulo 2^64, which would turn "-5" into a huge
/// cluster count — so parse via a validated token instead.
bool ReadCount(std::istream& in, uint64_t* out) {
  std::string token;
  if (!(in >> token) || token.empty()) return false;
  for (char c : token) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return false;
  }
  errno = 0;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(token.c_str(), &end, 10);
  if (errno == ERANGE || end != token.c_str() + token.size()) return false;
  *out = value;
  return true;
}

/// Reads one double and rejects NaN/Inf: non-finite statistics would pass
/// FromTuple's sign checks (NaN compares false) and poison every density
/// computed from the summary.
bool ReadFinite(std::istream& in, double* out) {
  double v;
  if (!(in >> v) || !std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Splits a v2 payload into (body, footer) and verifies the CRC. Returns
/// the byte length of the body on success.
Result<size_t> VerifyCrcFooter(const std::string& text) {
  const size_t pos = text.rfind(kCrcKey);
  if (pos == std::string::npos || (pos != 0 && text[pos - 1] != '\n')) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: v2 payload is missing its crc32 footer "
        "(truncated file?)");
  }
  std::istringstream footer(text.substr(pos));
  std::string key;
  std::string hex;
  std::string extra;
  if (!(footer >> key >> hex) || key != kCrcKey || (footer >> extra)) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: malformed crc32 footer");
  }
  uint32_t expected = 0;
  if (!ParseCrc32Hex(hex, &expected)) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: malformed crc32 footer value '" + hex +
        "'");
  }
  const uint32_t actual = Crc32(std::string_view(text.data(), pos));
  if (actual != expected) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: CRC mismatch (stored " + hex +
        ", computed " + Crc32Hex(actual) + ") — file is corrupt");
  }
  return pos;
}

}  // namespace

std::string SerializeMicroClusters(std::span<const MicroCluster> clusters,
                                   int version) {
  UDM_CHECK(version == 1 || version == 2)
      << "SerializeMicroClusters: unsupported version " << version;
  std::ostringstream out;
  out << std::setprecision(17);
  const size_t d = clusters.empty() ? 0 : clusters[0].NumDims();
  out << kMagic << " " << version << "\n";
  out << "dims " << d << " clusters " << clusters.size() << "\n";
  for (const MicroCluster& c : clusters) {
    UDM_CHECK(c.NumDims() == d) << "SerializeMicroClusters: mixed dims";
    out << c.Count();
    for (double v : c.cf1()) out << " " << v;
    for (double v : c.cf2()) out << " " << v;
    for (double v : c.ef2()) out << " " << v;
    out << "\n";
  }
  std::string text = out.str();
  if (version >= 2) {
    text += std::string(kCrcKey) + " " + Crc32Hex(Crc32(text)) + "\n";
  }
  return text;
}

Result<std::vector<MicroCluster>> DeserializeMicroClusters(
    const std::string& text) {
  // Check the header, and for v2 verify the CRC before trusting any field.
  std::string body = text;
  {
    std::istringstream probe(text);
    std::string magic;
    int version = 0;
    if (!(probe >> magic >> version) || magic != kMagic) {
      return Status::InvalidArgument(
          "DeserializeMicroClusters: bad header magic");
    }
    if (version < 1 || version > kSerializeVersionLatest) {
      return Status::InvalidArgument(
          "DeserializeMicroClusters: unsupported version " +
          std::to_string(version));
    }
    if (version >= 2) {
      UDM_ASSIGN_OR_RETURN(const size_t body_len, VerifyCrcFooter(text));
      body.resize(body_len);
    }
  }
  std::istringstream in(body);
  std::string magic;
  int version = 0;
  in >> magic >> version;
  std::string dims_key;
  std::string clusters_key;
  uint64_t d = 0;
  uint64_t m = 0;
  if (!(in >> dims_key) || dims_key != "dims" || !ReadCount(in, &d) ||
      !(in >> clusters_key) || clusters_key != "clusters" ||
      !ReadCount(in, &m)) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: bad shape line");
  }
  if (d == 0) {
    return Status::InvalidArgument("DeserializeMicroClusters: zero dims");
  }
  if (d > kMaxDims || m > kMaxClusters) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: implausible shape (dims " +
        std::to_string(d) + ", clusters " + std::to_string(m) + ")");
  }
  // Each cluster line carries 3d+1 tokens of at least two bytes ("0 ").
  // A header whose declared shape needs more bytes than the payload holds
  // is corrupt; checking now keeps the reserve below honest.
  const size_t remaining = body.size() - static_cast<size_t>(in.tellg());
  if (m > 0 && (3 * d + 1) > remaining / (2 * m) + 1) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: declared shape exceeds payload size");
  }
  std::vector<MicroCluster> clusters;
  clusters.reserve(m);
  for (size_t c = 0; c < m; ++c) {
    uint64_t count = 0;
    if (!ReadCount(in, &count)) {
      return Status::InvalidArgument(
          "DeserializeMicroClusters: bad or truncated count at cluster " +
          std::to_string(c));
    }
    std::vector<double> cf1(d);
    std::vector<double> cf2(d);
    std::vector<double> ef2(d);
    for (double& v : cf1) {
      if (!ReadFinite(in, &v)) {
        return Status::InvalidArgument(
            "DeserializeMicroClusters: bad CF1 entry at cluster " +
            std::to_string(c));
      }
    }
    for (double& v : cf2) {
      if (!ReadFinite(in, &v)) {
        return Status::InvalidArgument(
            "DeserializeMicroClusters: bad CF2 entry at cluster " +
            std::to_string(c));
      }
    }
    for (double& v : ef2) {
      if (!ReadFinite(in, &v)) {
        return Status::InvalidArgument(
            "DeserializeMicroClusters: bad EF2 entry at cluster " +
            std::to_string(c));
      }
    }
    Result<MicroCluster> cluster = MicroCluster::FromTuple(
        std::move(cf1), std::move(cf2), std::move(ef2), count);
    if (!cluster.ok()) {
      return cluster.status().WithContext("cluster " + std::to_string(c));
    }
    clusters.push_back(std::move(cluster).value());
  }
  std::string trailing;
  if (in >> trailing) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: trailing data after " + std::to_string(m) +
        " clusters (starts with '" + trailing + "')");
  }
  return clusters;
}

Status SaveMicroClusters(std::span<const MicroCluster> clusters,
                         const std::string& path, int version) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << SerializeMicroClusters(clusters, version);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::vector<MicroCluster>> LoadMicroClusters(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<std::vector<MicroCluster>> result =
      DeserializeMicroClusters(buffer.str());
  if (!result.ok()) return result.status().WithContext(path);
  return result;
}

}  // namespace udm
