#include "microcluster/serialize.h"

#include <fstream>
#include <iomanip>
#include <sstream>

namespace udm {

namespace {
constexpr char kMagic[] = "udm-microclusters";
constexpr int kVersion = 1;
}  // namespace

std::string SerializeMicroClusters(std::span<const MicroCluster> clusters) {
  std::ostringstream out;
  out << std::setprecision(17);
  const size_t d = clusters.empty() ? 0 : clusters[0].NumDims();
  out << kMagic << " " << kVersion << "\n";
  out << "dims " << d << " clusters " << clusters.size() << "\n";
  for (const MicroCluster& c : clusters) {
    UDM_CHECK(c.NumDims() == d) << "SerializeMicroClusters: mixed dims";
    out << c.Count();
    for (double v : c.cf1()) out << " " << v;
    for (double v : c.cf2()) out << " " << v;
    for (double v : c.ef2()) out << " " << v;
    out << "\n";
  }
  return out.str();
}

Result<std::vector<MicroCluster>> DeserializeMicroClusters(
    const std::string& text) {
  std::istringstream in(text);
  std::string magic;
  int version = 0;
  if (!(in >> magic >> version) || magic != kMagic) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: bad header magic");
  }
  if (version != kVersion) {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: unsupported version " +
        std::to_string(version));
  }
  std::string dims_key;
  std::string clusters_key;
  size_t d = 0;
  size_t m = 0;
  if (!(in >> dims_key >> d >> clusters_key >> m) || dims_key != "dims" ||
      clusters_key != "clusters") {
    return Status::InvalidArgument(
        "DeserializeMicroClusters: bad shape line");
  }
  if (d == 0) {
    return Status::InvalidArgument("DeserializeMicroClusters: zero dims");
  }
  std::vector<MicroCluster> clusters;
  clusters.reserve(m);
  for (size_t c = 0; c < m; ++c) {
    uint64_t count = 0;
    if (!(in >> count)) {
      return Status::InvalidArgument(
          "DeserializeMicroClusters: truncated at cluster " +
          std::to_string(c));
    }
    std::vector<double> cf1(d);
    std::vector<double> cf2(d);
    std::vector<double> ef2(d);
    for (double& v : cf1) {
      if (!(in >> v)) {
        return Status::InvalidArgument(
            "DeserializeMicroClusters: truncated CF1");
      }
    }
    for (double& v : cf2) {
      if (!(in >> v)) {
        return Status::InvalidArgument(
            "DeserializeMicroClusters: truncated CF2");
      }
    }
    for (double& v : ef2) {
      if (!(in >> v)) {
        return Status::InvalidArgument(
            "DeserializeMicroClusters: truncated EF2");
      }
    }
    Result<MicroCluster> cluster = MicroCluster::FromTuple(
        std::move(cf1), std::move(cf2), std::move(ef2), count);
    if (!cluster.ok()) {
      return cluster.status().WithContext("cluster " + std::to_string(c));
    }
    clusters.push_back(std::move(cluster).value());
  }
  return clusters;
}

Status SaveMicroClusters(std::span<const MicroCluster> clusters,
                         const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IoError("cannot open '" + path + "' for writing");
  out << SerializeMicroClusters(clusters);
  if (!out) return Status::IoError("write failed for '" + path + "'");
  return Status::OK();
}

Result<std::vector<MicroCluster>> LoadMicroClusters(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  Result<std::vector<MicroCluster>> result =
      DeserializeMicroClusters(buffer.str());
  if (!result.ok()) return result.status().WithContext(path);
  return result;
}

}  // namespace udm
