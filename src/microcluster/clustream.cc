#include "microcluster/clustream.h"

#include <limits>

#include "common/math_util.h"

namespace udm {

Result<CluStreamMaintainer> CluStreamMaintainer::Create(
    size_t num_dims, const Options& options) {
  if (num_dims == 0) {
    return Status::InvalidArgument("CluStreamMaintainer: num_dims == 0");
  }
  if (options.num_clusters < 2) {
    return Status::InvalidArgument(
        "CluStreamMaintainer: need at least two clusters (merging needs a "
        "pair)");
  }
  if (options.boundary_factor <= 0.0) {
    return Status::InvalidArgument(
        "CluStreamMaintainer: boundary_factor must be positive");
  }
  return CluStreamMaintainer(num_dims, options);
}

double CluStreamMaintainer::MaxBoundary2(size_t c) const {
  const MicroCluster& cluster = clusters_[c];
  if (cluster.Count() >= 2) {
    // RMS deviation of the cluster's member *values* (CluStream's
    // definition). The error mass EF2 is deliberately excluded: including
    // it would widen boundaries with the noise level until no point ever
    // fails the fit test and the policy degenerates.
    double mean_var = 0.0;
    for (size_t j = 0; j < num_dims_; ++j) mean_var += cluster.VarianceAt(j);
    mean_var /= static_cast<double>(num_dims_);
    const double boundary =
        options_.boundary_factor * options_.boundary_factor * mean_var;
    if (boundary > 0.0) return boundary;
  }
  // Singleton (or degenerate) cluster: distance to the nearest other
  // centroid, per CluStream's heuristic.
  double nearest = std::numeric_limits<double>::infinity();
  const std::span<const double> own{centroids_.data() + c * num_dims_,
                                    num_dims_};
  for (size_t other = 0; other < clusters_.size(); ++other) {
    if (other == c) continue;
    const std::span<const double> centroid{
        centroids_.data() + other * num_dims_, num_dims_};
    nearest = std::min(nearest, SquaredEuclidean(own, centroid));
  }
  return nearest;
}

void CluStreamMaintainer::RefreshCentroid(size_t c) {
  const double n = static_cast<double>(clusters_[c].Count());
  double* centroid = centroids_.data() + c * num_dims_;
  for (size_t j = 0; j < num_dims_; ++j) {
    centroid[j] = clusters_[c].cf1()[j] / n;
  }
}

void CluStreamMaintainer::MergeClosestPair() {
  size_t best_a = 0;
  size_t best_b = 1;
  double best_dist = std::numeric_limits<double>::infinity();
  for (size_t a = 0; a < clusters_.size(); ++a) {
    const std::span<const double> ca{centroids_.data() + a * num_dims_,
                                     num_dims_};
    for (size_t b = a + 1; b < clusters_.size(); ++b) {
      const std::span<const double> cb{centroids_.data() + b * num_dims_,
                                       num_dims_};
      const double dist = SquaredEuclidean(ca, cb);
      if (dist < best_dist) {
        best_dist = dist;
        best_a = a;
        best_b = b;
      }
    }
  }
  clusters_[best_a].Merge(clusters_[best_b]);
  RefreshCentroid(best_a);
  // Swap-erase the absorbed cluster and its centroid cache row.
  const size_t last = clusters_.size() - 1;
  if (best_b != last) {
    clusters_[best_b] = std::move(clusters_[last]);
    for (size_t j = 0; j < num_dims_; ++j) {
      centroids_[best_b * num_dims_ + j] = centroids_[last * num_dims_ + j];
    }
  }
  clusters_.pop_back();
  centroids_.resize(clusters_.size() * num_dims_);
  ++num_merges_;
}

size_t CluStreamMaintainer::Add(std::span<const double> values,
                                std::span<const double> psi) {
  UDM_CHECK(values.size() == num_dims_) << "Add: value size";
  UDM_CHECK(psi.size() == num_dims_) << "Add: psi size";
  ++num_points_;

  if (clusters_.size() < 2) {
    MicroCluster cluster(num_dims_);
    cluster.AddPoint(values, psi);
    clusters_.push_back(std::move(cluster));
    centroids_.insert(centroids_.end(), values.begin(), values.end());
    ++num_creations_;
    return clusters_.size() - 1;
  }

  size_t nearest = 0;
  double nearest_dist = std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < clusters_.size(); ++c) {
    const std::span<const double> centroid{centroids_.data() + c * num_dims_,
                                           num_dims_};
    const double dist =
        AssignmentDistanceValue(options_.distance, values, psi, centroid);
    if (dist < nearest_dist) {
      nearest_dist = dist;
      nearest = c;
    }
  }

  if (nearest_dist <= MaxBoundary2(nearest)) {
    clusters_[nearest].AddPoint(values, psi);
    RefreshCentroid(nearest);
    return nearest;
  }

  // The point does not naturally fit: found a new cluster, restoring the
  // budget by merging the closest existing pair first.
  if (clusters_.size() >= options_.num_clusters) MergeClosestPair();
  MicroCluster cluster(num_dims_);
  cluster.AddPoint(values, psi);
  clusters_.push_back(std::move(cluster));
  centroids_.insert(centroids_.end(), values.begin(), values.end());
  ++num_creations_;
  return clusters_.size() - 1;
}

Status CluStreamMaintainer::AddDataset(const Dataset& data,
                                       const ErrorModel& errors) {
  if (data.NumDims() != num_dims_) {
    return Status::InvalidArgument("AddDataset: dimension mismatch");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument("AddDataset: error model shape mismatch");
  }
  for (size_t i = 0; i < data.NumRows(); ++i) {
    Add(data.Row(i), errors.RowPsi(i));
  }
  return Status::OK();
}

}  // namespace udm
