#include "microcluster/merge.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <string>

#include "microcluster/distance.h"

namespace udm {

namespace {

/// Pseudo-point view of a cluster: centroid and per-dimension error width
/// Δ_j(C) (Lemma 1), the inputs the assignment distance needs.
struct PseudoPoint {
  std::vector<double> centroid;
  std::vector<double> delta;
};

PseudoPoint MakePseudoPoint(const MicroCluster& cluster) {
  PseudoPoint p;
  const size_t d = cluster.NumDims();
  p.centroid.resize(d);
  p.delta.resize(d);
  for (size_t j = 0; j < d; ++j) {
    p.centroid[j] = cluster.Centroid(j);
    p.delta[j] = cluster.DeltaAt(j);
  }
  return p;
}

}  // namespace

Result<std::vector<MicroCluster>> MergeSummaries(
    std::span<const SummaryView> summaries, size_t num_dims,
    const MicroClusterer::Options& options) {
  if (num_dims == 0) {
    return Status::InvalidArgument("MergeSummaries: num_dims == 0");
  }
  if (options.num_clusters == 0) {
    return Status::InvalidArgument("MergeSummaries: num_clusters == 0");
  }

  // Gather every non-empty input cluster, preserving input order.
  std::vector<const MicroCluster*> inputs;
  for (size_t s = 0; s < summaries.size(); ++s) {
    for (size_t c = 0; c < summaries[s].size(); ++c) {
      const MicroCluster& cluster = summaries[s][c];
      if (cluster.IsEmpty()) continue;
      if (cluster.NumDims() != num_dims) {
        return Status::InvalidArgument(
            "MergeSummaries: summary " + std::to_string(s) + " cluster " +
            std::to_string(c) + " has " + std::to_string(cluster.NumDims()) +
            " dims, expected " + std::to_string(num_dims));
      }
      inputs.push_back(&cluster);
    }
  }

  std::vector<MicroCluster> merged;
  if (inputs.empty()) return merged;

  const size_t q = options.num_clusters;
  if (inputs.size() <= q) {
    // Everything fits the budget: the merge is exactly lossless.
    merged.reserve(inputs.size());
    for (const MicroCluster* cluster : inputs) merged.push_back(*cluster);
    return merged;
  }

  // Over budget: seed with the q most populous clusters (stable order, so
  // the result is deterministic), then absorb the rest into their nearest
  // seed centroid — the monolithic maintenance rule applied to
  // pseudo-points.
  std::vector<size_t> order(inputs.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return inputs[a]->Count() > inputs[b]->Count();
  });

  merged.reserve(q);
  std::vector<double> centroids;
  centroids.reserve(q * num_dims);
  for (size_t i = 0; i < q; ++i) {
    const MicroCluster& seed = *inputs[order[i]];
    merged.push_back(seed);
    for (size_t j = 0; j < num_dims; ++j) {
      centroids.push_back(seed.Centroid(j));
    }
  }
  for (size_t i = q; i < order.size(); ++i) {
    const MicroCluster& cluster = *inputs[order[i]];
    const PseudoPoint p = MakePseudoPoint(cluster);
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < merged.size(); ++c) {
      const std::span<const double> centroid{
          centroids.data() + c * num_dims, num_dims};
      const double dist = AssignmentDistanceValue(options.distance,
                                                  p.centroid, p.delta,
                                                  centroid);
      if (dist < best_dist) {
        best_dist = dist;
        best = c;
      }
    }
    merged[best].Merge(cluster);
    const double n = static_cast<double>(merged[best].Count());
    double* centroid = centroids.data() + best * num_dims;
    for (size_t j = 0; j < num_dims; ++j) {
      centroid[j] = merged[best].cf1()[j] / n;
    }
  }
  return merged;
}

Result<std::vector<MicroCluster>> MergeSummaries(
    SummaryView a, SummaryView b, size_t num_dims,
    const MicroClusterer::Options& options) {
  const SummaryView views[] = {a, b};
  return MergeSummaries(std::span<const SummaryView>(views), num_dims,
                        options);
}

}  // namespace udm
