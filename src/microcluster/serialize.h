#ifndef UDM_MICROCLUSTER_SERIALIZE_H_
#define UDM_MICROCLUSTER_SERIALIZE_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "microcluster/microcluster.h"

namespace udm {

/// Persistence for micro-cluster summaries.
///
/// A summary is the paper's whole point: once the one-pass compression is
/// done, the (3d+1)-per-cluster statistics *are* the dataset for all
/// downstream density work. Saving them means "train once on the stream,
/// classify anywhere later" without revisiting the raw data.
///
/// Format (version-tagged, line-oriented text; doubles round-trip via
/// max_digits10):
///
///   udm-microclusters <version>
///   dims <d> clusters <m>
///   <n(C)> <CF1x[0..d)> <CF2x[0..d)> <EF2x[0..d)>     (m lines)
///   crc32 <8-hex>                                     (version >= 2 only)
///
/// Version 2 appends a CRC-32 footer over every byte before the footer
/// line, so truncation and bit rot are detected at load time. Version 1
/// files (no footer) are still read for backward compatibility.

/// Newest version written by default.
inline constexpr int kSerializeVersionLatest = 2;

/// Serializes the summary to a string in the given format version (1 or 2).
std::string SerializeMicroClusters(std::span<const MicroCluster> clusters,
                                   int version = kSerializeVersionLatest);

/// Parses a summary previously produced by SerializeMicroClusters (any
/// supported version; v2 inputs must carry a valid CRC footer). Never
/// throws or aborts on malformed input — every defect maps to a Status.
Result<std::vector<MicroCluster>> DeserializeMicroClusters(
    const std::string& text);

/// Writes the summary to a file.
Status SaveMicroClusters(std::span<const MicroCluster> clusters,
                         const std::string& path,
                         int version = kSerializeVersionLatest);

/// Reads a summary from a file.
Result<std::vector<MicroCluster>> LoadMicroClusters(const std::string& path);

}  // namespace udm

#endif  // UDM_MICROCLUSTER_SERIALIZE_H_
