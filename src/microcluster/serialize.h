#ifndef UDM_MICROCLUSTER_SERIALIZE_H_
#define UDM_MICROCLUSTER_SERIALIZE_H_

#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "microcluster/microcluster.h"

namespace udm {

/// Persistence for micro-cluster summaries.
///
/// A summary is the paper's whole point: once the one-pass compression is
/// done, the (3d+1)-per-cluster statistics *are* the dataset for all
/// downstream density work. Saving them means "train once on the stream,
/// classify anywhere later" without revisiting the raw data.
///
/// Format (version-tagged, line-oriented text; doubles round-trip via
/// max_digits10):
///
///   udm-microclusters 1
///   dims <d> clusters <m>
///   <n(C)> <CF1x[0..d)> <CF2x[0..d)> <EF2x[0..d)>     (m lines)

/// Serializes the summary to a string.
std::string SerializeMicroClusters(std::span<const MicroCluster> clusters);

/// Parses a summary previously produced by SerializeMicroClusters.
Result<std::vector<MicroCluster>> DeserializeMicroClusters(
    const std::string& text);

/// Writes the summary to a file.
Status SaveMicroClusters(std::span<const MicroCluster> clusters,
                         const std::string& path);

/// Reads a summary from a file.
Result<std::vector<MicroCluster>> LoadMicroClusters(const std::string& path);

}  // namespace udm

#endif  // UDM_MICROCLUSTER_SERIALIZE_H_
