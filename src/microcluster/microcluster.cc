#include "microcluster/microcluster.h"

#include <algorithm>
#include <cmath>

namespace udm {

Result<MicroCluster> MicroCluster::FromTuple(std::vector<double> cf1,
                                             std::vector<double> cf2,
                                             std::vector<double> ef2,
                                             uint64_t count) {
  if (cf1.empty() || cf1.size() != cf2.size() || cf1.size() != ef2.size()) {
    return Status::InvalidArgument("MicroCluster::FromTuple: size mismatch");
  }
  if (count == 0) {
    for (size_t j = 0; j < cf1.size(); ++j) {
      if (cf1[j] != 0.0 || cf2[j] != 0.0 || ef2[j] != 0.0) {
        return Status::InvalidArgument(
            "MicroCluster::FromTuple: empty cluster with nonzero sums");
      }
    }
  }
  const double n = static_cast<double>(count);
  for (size_t j = 0; j < cf1.size(); ++j) {
    if (ef2[j] < 0.0) {
      return Status::InvalidArgument(
          "MicroCluster::FromTuple: negative EF2 entry");
    }
    if (count > 0) {
      const double mean = cf1[j] / n;
      // Allow a small relative slack for round-tripped floating point.
      if (cf2[j] / n - mean * mean < -1e-6 * (1.0 + cf2[j] / n)) {
        return Status::InvalidArgument(
            "MicroCluster::FromTuple: CF2/CF1 imply negative variance");
      }
    }
  }
  MicroCluster cluster(cf1.size());
  cluster.cf1_ = std::move(cf1);
  cluster.cf2_ = std::move(cf2);
  cluster.ef2_ = std::move(ef2);
  cluster.count_ = count;
  return cluster;
}

void MicroCluster::AddPoint(std::span<const double> values,
                            std::span<const double> psi) {
  UDM_DCHECK(values.size() == NumDims()) << "AddPoint: value size";
  UDM_DCHECK(psi.size() == NumDims()) << "AddPoint: psi size";
  for (size_t j = 0; j < NumDims(); ++j) {
    cf1_[j] += values[j];
    cf2_[j] += values[j] * values[j];
    ef2_[j] += psi[j] * psi[j];
  }
  ++count_;
}

void MicroCluster::Merge(const MicroCluster& other) {
  UDM_CHECK(other.NumDims() == NumDims()) << "Merge: dimension mismatch";
  for (size_t j = 0; j < NumDims(); ++j) {
    cf1_[j] += other.cf1_[j];
    cf2_[j] += other.cf2_[j];
    ef2_[j] += other.ef2_[j];
  }
  count_ += other.count_;
}

Result<MicroCluster> MicroCluster::Subtract(const MicroCluster& other) const {
  if (other.NumDims() != NumDims()) {
    return Status::InvalidArgument("Subtract: dimension mismatch");
  }
  if (other.count_ > count_) {
    return Status::InvalidArgument("Subtract: other has more points");
  }
  MicroCluster out(NumDims());
  out.count_ = count_ - other.count_;
  for (size_t j = 0; j < NumDims(); ++j) {
    out.cf1_[j] = cf1_[j] - other.cf1_[j];
    out.cf2_[j] = cf2_[j] - other.cf2_[j];
    out.ef2_[j] = ef2_[j] - other.ef2_[j];
    // CF2/EF2 are sums of squares: a materially negative remainder means
    // `other` was not a subset of this cluster.
    const double tol = 1e-9 * (1.0 + cf2_[j]);
    if (out.cf2_[j] < -tol || out.ef2_[j] < -tol) {
      return Status::InvalidArgument(
          "Subtract: other is not a subset of this cluster");
    }
    out.cf2_[j] = std::max(out.cf2_[j], 0.0);
    out.ef2_[j] = std::max(out.ef2_[j], 0.0);
  }
  if (out.count_ == 0) {
    for (size_t j = 0; j < NumDims(); ++j) {
      out.cf1_[j] = 0.0;
      out.cf2_[j] = 0.0;
      out.ef2_[j] = 0.0;
    }
  }
  return out;
}

std::vector<double> MicroCluster::CentroidVector() const {
  UDM_DCHECK(!IsEmpty());
  std::vector<double> centroid(NumDims());
  for (size_t j = 0; j < NumDims(); ++j) centroid[j] = Centroid(j);
  return centroid;
}

double MicroCluster::VarianceAt(size_t dim) const {
  UDM_DCHECK(!IsEmpty() && dim < NumDims());
  const double n = static_cast<double>(count_);
  const double mean = cf1_[dim] / n;
  // Clamp: CF2/n - mean^2 can dip below zero by rounding for tight clusters.
  return std::max(0.0, cf2_[dim] / n - mean * mean);
}

double MicroCluster::DeltaAt(size_t dim) const {
  return std::sqrt(Delta2At(dim));
}

AggregatedStats AggregateStats(std::span<const MicroCluster> clusters) {
  AggregatedStats agg;
  if (clusters.empty()) return agg;
  const size_t d = clusters[0].NumDims();
  agg.dims.resize(d);
  std::vector<double> cf1(d, 0.0);
  std::vector<double> cf2(d, 0.0);
  for (const MicroCluster& c : clusters) {
    UDM_CHECK(c.NumDims() == d) << "AggregateStats: dimension mismatch";
    for (size_t j = 0; j < d; ++j) {
      cf1[j] += c.cf1()[j];
      cf2[j] += c.cf2()[j];
    }
    agg.total_count += c.Count();
  }
  if (agg.total_count == 0) return agg;
  const double n = static_cast<double>(agg.total_count);
  for (size_t j = 0; j < d; ++j) {
    agg.dims[j].mean = cf1[j] / n;
    agg.dims[j].variance =
        std::max(0.0, cf2[j] / n - agg.dims[j].mean * agg.dims[j].mean);
    agg.dims[j].stddev = std::sqrt(agg.dims[j].variance);
    // min/max are not recoverable from CF tuples; leave at defaults.
  }
  return agg;
}

}  // namespace udm
