#include "microcluster/mc_density.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "common/simd.h"
#include "kde/bandwidth.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "kde/kernel.h"
#include "kde/simd_sweep.h"

namespace udm {

using kde_internal::CellsPrunedCounter;
using kde_internal::CellsVisitedCounter;
using kde_internal::CountEvalTrip;
using kde_internal::ErrorKernelTable;
using kde_internal::ExpSumState;
using kde_internal::Gather;
using kde_internal::GatherRows;
using kde_internal::GetSimdDispatch;
using kde_internal::IndexedEvalCounters;
using kde_internal::IndexedPrunedSum;
using kde_internal::kEvalChunk;
using kde_internal::KernelEvalCounter;
using kde_internal::PrunedTermsCounter;
using kde_internal::ResolveIndexMode;
using kde_internal::ShouldBuildIndex;
using kde_internal::SpatialIndex;

namespace {

void CountIndexedCells(const IndexedEvalCounters& local,
                       IndexedEvalCounters* out) {
  if (local.cells_visited != 0) {
    CellsVisitedCounter().Increment(local.cells_visited);
  }
  if (local.cells_pruned != 0) {
    CellsPrunedCounter().Increment(local.cells_pruned);
  }
  if (out != nullptr) {
    out->cells_visited += local.cells_visited;
    out->cells_pruned += local.cells_pruned;
    out->pruned_terms += local.pruned_terms;
  }
}

}  // namespace

McDensityModel::McDensityModel(std::vector<double> centroids,
                               ErrorKernelTable table,
                               std::vector<double> weights,
                               uint64_t total_count, size_t num_dims,
                               std::vector<double> bandwidths,
                               const DensityEvalOptions& options)
    : centroids_(std::move(centroids)),
      table_(std::move(table)),
      weights_(std::move(weights)),
      log_weights_(weights_.size()),
      total_count_(total_count),
      num_dims_(num_dims),
      all_dims_(num_dims),
      bandwidths_(std::move(bandwidths)),
      normalization_(options.normalization),
      log_prune_threshold_(options.log_prune_threshold),
      simd_(&GetSimdDispatch(EffectiveSimdLevel(options.simd))) {
  for (size_t c = 0; c < weights_.size(); ++c) {
    log_weights_[c] = std::log(weights_[c]);
  }
  for (size_t j = 0; j < num_dims_; ++j) all_dims_[j] = j;
  if (ShouldBuildIndex(options.index, weights_.size())) {
    // The log-weight seed makes the cell bound cover the weighted term
    // n(C)/N · Q'(...), so a heavy cluster can never be pruned by a bound
    // that only saw its geometry.
    index_ = SpatialIndex::Build(table_.values, weights_.size(), num_dims_,
                                 table_.neg_inv_two_var, table_.log_norm,
                                 bandwidths_, log_weights_, options.index);
    // Re-pack every per-cluster array into the index's cell-contiguous
    // order so all paths (and the public accessors) agree on one order.
    const std::span<const size_t> perm = index_->permutation();
    table_.Permute(perm);
    centroids_ = GatherRows(centroids_, weights_.size(), num_dims_, perm);
    weights_ = Gather(weights_, perm);
    log_weights_ = Gather(log_weights_, perm);
  }
}

Result<McDensityModel> McDensityModel::Build(
    std::span<const MicroCluster> clusters,
    const DensityEvalOptions& options) {
  if (clusters.empty()) {
    return Status::InvalidArgument("McDensityModel::Build: no clusters");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: bandwidth knobs must be positive");
  }
  if (std::isnan(options.log_prune_threshold) ||
      options.log_prune_threshold <= 0.0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: log_prune_threshold must be positive");
  }
  const size_t d = clusters[0].NumDims();
  const AggregatedStats agg = AggregateStats(clusters);
  if (agg.total_count == 0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: summary holds no points");
  }

  std::vector<double> centroids;
  std::vector<double> deltas;
  std::vector<double> weights;
  for (const MicroCluster& c : clusters) {
    if (c.IsEmpty()) continue;
    if (c.NumDims() != d) {
      return Status::InvalidArgument(
          "McDensityModel::Build: cluster dimension mismatch");
    }
    for (size_t j = 0; j < d; ++j) {
      centroids.push_back(c.Centroid(j));
      deltas.push_back(c.DeltaAt(j));
    }
    weights.push_back(static_cast<double>(c.Count()) /
                      static_cast<double>(agg.total_count));
  }

  std::vector<DimensionStats> bandwidth_stats = agg.dims;
  if (options.deconvolve_bandwidth) {
    // The additive EF2 sums recover the mean error mass per dimension.
    for (size_t j = 0; j < d; ++j) {
      double ef2_sum = 0.0;
      for (const MicroCluster& c : clusters) ef2_sum += c.ef2()[j];
      const double mean_psi2 =
          ef2_sum / static_cast<double>(agg.total_count);
      const double corrected =
          std::max(bandwidth_stats[j].variance - mean_psi2,
                   0.01 * bandwidth_stats[j].variance);
      bandwidth_stats[j].variance = corrected;
      bandwidth_stats[j].stddev = std::sqrt(corrected);
    }
  }
  std::vector<double> bandwidths = ComputeBandwidthsFromStats(
      bandwidth_stats, agg.total_count, options.bandwidth_rule,
      options.bandwidth_scale, options.min_bandwidth);

  ErrorKernelTable table =
      ErrorKernelTable::Build(centroids, deltas, weights.size(), d, bandwidths,
                              options.normalization);
  return McDensityModel(std::move(centroids), std::move(table),
                        std::move(weights), agg.total_count, d,
                        std::move(bandwidths), options);
}

void McDensityModel::SweepLogTerms(std::span<const double> x,
                                   std::span<const size_t> dims,
                                   const double* seed, size_t first,
                                   size_t len, double* terms) const {
  if (seed != nullptr) {
    std::copy_n(seed + first, len, terms);
  } else {
    std::fill_n(terms, len, 0.0);
  }
  for (size_t dim : dims) {
    UDM_DCHECK(dim < num_dims_);
    simd_->sweep(x[dim], table_.ValuesCol(dim) + first,
                 table_.NegInvTwoVarCol(dim) + first,
                 table_.LogNormCol(dim) + first, terms, len);
  }
}

double McDensityModel::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  return EvaluateSubspace(x, all_dims_);
}

double McDensityModel::EvaluateSubspace(std::span<const double> x,
                                        std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result =
      SubspaceDensity(x, dims, unbounded, ScratchArena::ThreadLocal(),
                      index_.has_value() ? &*index_ : nullptr, nullptr);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

double McDensityModel::LogEvaluateSubspace(std::span<const double> x,
                                           std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "LogEvaluateSubspace: point dimension";
  ExecContext unbounded;
  Result<double> result = SubspaceLogDensity(
      x, dims, unbounded, ScratchArena::ThreadLocal(),
      index_.has_value() ? &*index_ : nullptr, nullptr);
  UDM_CHECK(result.ok()) << result.status().ToString();
  return result.value();
}

Result<EvalResult> McDensityModel::Evaluate(const EvalRequest& request) const {
  UDM_ASSIGN_OR_RETURN(
      const SpatialIndex* index,
      ResolveIndexMode(index_, request.index, "McDensityModel"));
  const bool log_space = request.log_space;
  std::atomic<uint64_t> pruned_total{0};
  std::atomic<uint64_t> cells_visited_total{0};
  std::atomic<uint64_t> cells_pruned_total{0};
  const auto count_tile = [&](const IndexedEvalCounters& counters) {
    if (counters.pruned_terms != 0) {
      pruned_total.fetch_add(counters.pruned_terms,
                             std::memory_order_relaxed);
    }
    if (counters.cells_visited != 0) {
      cells_visited_total.fetch_add(counters.cells_visited,
                                    std::memory_order_relaxed);
    }
    if (counters.cells_pruned != 0) {
      cells_pruned_total.fetch_add(counters.cells_pruned,
                                   std::memory_order_relaxed);
    }
  };
  // The indexed path prunes per query, so it cannot share panels; the
  // dense path tiles queries against each cache-resident table panel.
  // Large kAuto batches probe whether the index actually prunes and fall
  // back to the dense tiled path (bit-identical) when it does not.
  const size_t dense_tile = kde_internal::QueryTileSize(weights_.size());
  index = kde_internal::ResolveBatchIndex(
      index, request, num_dims_, dense_tile, all_dims_,
      [&](std::span<const double> x, std::span<const size_t> dims,
          IndexedEvalCounters& counters) {
        ExecContext unbounded;
        (void)(log_space
                   ? SubspaceLogDensity(x, dims, unbounded,
                                        ScratchArena::ThreadLocal(), index,
                                        &counters)
                   : SubspaceDensity(x, dims, unbounded,
                                     ScratchArena::ThreadLocal(), index,
                                     &counters));
      });
  const size_t tile = index != nullptr ? 1 : dense_tile;
  Result<EvalResult> result = kde_internal::BatchEvaluateTiles(
      request, num_dims_, weights_.size(), tile, "mc_density.eval_batch",
      [this, log_space, index, &count_tile](
          std::span<const double> points, size_t count,
          std::span<const size_t> dims, ExecContext& ctx,
          ScratchArena& scratch, double* out) -> Status {
        IndexedEvalCounters counters;
        if (index == nullptr) {
          const Status status = EvalTileDense(points, count, dims, log_space,
                                              ctx, scratch, out, &counters);
          count_tile(counters);
          return status;
        }
        for (size_t q = 0; q < count; ++q) {
          const std::span<const double> x =
              points.subspan(q * num_dims_, num_dims_);
          const Result<double> density =
              log_space
                  ? SubspaceLogDensity(x, dims, ctx, scratch, index,
                                       &counters)
                  : SubspaceDensity(x, dims, ctx, scratch, index, &counters);
          if (!density.ok()) {
            count_tile(counters);
            return density.status();
          }
          out[q] = density.value();
        }
        count_tile(counters);
        return Status::OK();
      });
  if (result.ok()) {
    result.value().stats.pruned_terms =
        pruned_total.load(std::memory_order_relaxed);
    result.value().stats.cells_visited =
        cells_visited_total.load(std::memory_order_relaxed);
    result.value().stats.cells_pruned =
        cells_pruned_total.load(std::memory_order_relaxed);
    result.value().stats.simd = simd_->level;
  }
  return result;
}

Status McDensityModel::EvalTileDense(std::span<const double> points,
                                     size_t count,
                                     std::span<const size_t> dims,
                                     bool log_space, ExecContext& ctx,
                                     ScratchArena& scratch, double* out,
                                     IndexedEvalCounters* counters) const {
  UDM_RETURN_IF_ERROR(ctx.Check());
  const size_t m = weights_.size();
  std::span<double> log_terms =
      scratch.Doubles(ScratchArena::kLogTerms, count * m);
  double max_term[kde_internal::kMaxQueryTile];
  std::fill_n(max_term, count, -std::numeric_limits<double>::infinity());
  // Panel loop: chunk-outer, query-inner — every query in the tile sweeps
  // the same kEvalChunk panel of the three column streams while it is
  // cache-resident. Per-query arithmetic (seeded sweep, max scan,
  // exp-and-sum) matches the per-point path element for element.
  for (size_t start = 0; start < m; start += kEvalChunk) {
    const size_t end = std::min(start + kEvalChunk, m);
    const size_t len = end - start;
    Status charge = ctx.ChargeKernelEvals(len * dims.size() * count);
    if (!charge.ok()) return CountEvalTrip(std::move(charge));
    KernelEvalCounter().Increment(len * dims.size() * count);
    for (size_t q = 0; q < count; ++q) {
      double* terms = log_terms.data() + q * m + start;
      SweepLogTerms(points.subspan(q * num_dims_, num_dims_), dims,
                    log_weights_.data(), start, len, terms);
      for (size_t i = 0; i < len; ++i) {
        max_term[q] = std::max(max_term[q], terms[i]);
      }
    }
    Status check = ctx.Check();
    if (!check.ok()) return CountEvalTrip(std::move(check));
  }
  for (size_t q = 0; q < count; ++q) {
    if (!std::isfinite(max_term[q])) {
      out[q] = log_space ? -std::numeric_limits<double>::infinity() : 0.0;
      continue;
    }
    ExpSumState state;
    simd_->pruned_exp_accum(log_terms.data() + q * m, m, max_term[q],
                            log_space ? max_term[q] : 0.0,
                            log_prune_threshold_, state);
    if (state.pruned != 0) {
      PrunedTermsCounter().Increment(state.pruned);
      if (counters != nullptr) counters->pruned_terms += state.pruned;
    }
    // Weights n(C)/N are folded into the seeded terms, so the weighted
    // density needs no ÷N here.
    out[q] = log_space ? max_term[q] + std::log(state.Total())
                       : state.Total();
  }
  return Status::OK();
}

Result<double> McDensityModel::SubspaceDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, const SpatialIndex* index,
    IndexedEvalCounters* counters) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  Status check = ctx.Check();
  if (!check.ok()) return CountEvalTrip(std::move(check));
  const size_t m = weights_.size();
  // Both linear paths fold the cluster weight into the log term
  // (exp(log w + Σ …) rather than w·exp(Σ …)) so the weighted sum shares
  // the log path's gap test — the index's cell bounds already cover the
  // seeded terms, and pruning decisions stay value-determined.
  if (index != nullptr) {
    IndexedEvalCounters local;
    Result<double> total = IndexedPrunedSum(
        *index, x, dims, log_prune_threshold_, /*log_space=*/false, *simd_,
        ctx, scratch,
        [&](size_t first, size_t len, double* terms) {
          SweepLogTerms(x, dims, log_weights_.data(), first, len, terms);
        },
        local);
    CountIndexedCells(local, counters);
    if (total.ok() && local.pruned_terms != 0) {
      PrunedTermsCounter().Increment(local.pruned_terms);
    }
    return total;
  }
  Status charge = ctx.ChargeKernelEvals(m * dims.size());
  if (!charge.ok()) return CountEvalTrip(std::move(charge));
  KernelEvalCounter().Increment(m * dims.size());
  std::span<double> terms = scratch.Doubles(ScratchArena::kLogTerms, m);
  SweepLogTerms(x, dims, log_weights_.data(), 0, m, terms.data());
  double max_term = -std::numeric_limits<double>::infinity();
  for (const double term : terms) max_term = std::max(max_term, term);
  if (!std::isfinite(max_term)) return 0.0;
  ExpSumState state;
  simd_->pruned_exp_accum(terms.data(), m, max_term, /*shift=*/0.0,
                          log_prune_threshold_, state);
  if (state.pruned != 0) {
    PrunedTermsCounter().Increment(state.pruned);
    if (counters != nullptr) counters->pruned_terms += state.pruned;
  }
  return state.Total();
}

Result<double> McDensityModel::SubspaceLogDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, const SpatialIndex* index,
    IndexedEvalCounters* counters) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("LogEvaluateSubspace: point dimension");
  }
  Status check = ctx.Check();
  if (!check.ok()) return CountEvalTrip(std::move(check));
  const size_t m = weights_.size();
  if (index != nullptr) {
    IndexedEvalCounters local;
    Result<double> log_sum = IndexedPrunedSum(
        *index, x, dims, log_prune_threshold_, /*log_space=*/true, *simd_,
        ctx, scratch,
        [&](size_t first, size_t len, double* terms) {
          SweepLogTerms(x, dims, log_weights_.data(), first, len, terms);
        },
        local);
    CountIndexedCells(local, counters);
    if (log_sum.ok() && local.pruned_terms != 0) {
      PrunedTermsCounter().Increment(local.pruned_terms);
    }
    return log_sum;
  }
  Status charge = ctx.ChargeKernelEvals(m * dims.size());
  if (!charge.ok()) return CountEvalTrip(std::move(charge));
  KernelEvalCounter().Increment(m * dims.size());
  std::span<double> terms = scratch.Doubles(ScratchArena::kLogTerms, m);
  SweepLogTerms(x, dims, log_weights_.data(), 0, m, terms.data());
  double max_term = -std::numeric_limits<double>::infinity();
  for (const double term : terms) max_term = std::max(max_term, term);
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  ExpSumState state;
  simd_->pruned_exp_accum(terms.data(), m, max_term, /*shift=*/max_term,
                          log_prune_threshold_, state);
  if (state.pruned != 0) {
    PrunedTermsCounter().Increment(state.pruned);
    if (counters != nullptr) counters->pruned_terms += state.pruned;
  }
  return max_term + std::log(state.Total());
}

}  // namespace udm
