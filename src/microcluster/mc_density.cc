#include "microcluster/mc_density.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "kde/bandwidth.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "kde/kernel.h"

namespace udm {

using kde_internal::CountEvalTrip;
using kde_internal::ErrorKernelTable;
using kde_internal::KernelEvalCounter;
using kde_internal::PrunedLogSumExp;
using kde_internal::PrunedTermsCounter;
using kde_internal::SweepLogKernel;

McDensityModel::McDensityModel(std::vector<double> centroids,
                               ErrorKernelTable table,
                               std::vector<double> weights,
                               uint64_t total_count, size_t num_dims,
                               std::vector<double> bandwidths,
                               KernelNormalization normalization,
                               double log_prune_threshold)
    : centroids_(std::move(centroids)),
      table_(std::move(table)),
      weights_(std::move(weights)),
      log_weights_(weights_.size()),
      total_count_(total_count),
      num_dims_(num_dims),
      all_dims_(num_dims),
      bandwidths_(std::move(bandwidths)),
      normalization_(normalization),
      log_prune_threshold_(log_prune_threshold) {
  for (size_t c = 0; c < weights_.size(); ++c) {
    log_weights_[c] = std::log(weights_[c]);
  }
  for (size_t j = 0; j < num_dims_; ++j) all_dims_[j] = j;
}

Result<McDensityModel> McDensityModel::Build(
    std::span<const MicroCluster> clusters,
    const ErrorDensityOptions& options) {
  if (clusters.empty()) {
    return Status::InvalidArgument("McDensityModel::Build: no clusters");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: bandwidth knobs must be positive");
  }
  if (std::isnan(options.log_prune_threshold) ||
      options.log_prune_threshold <= 0.0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: log_prune_threshold must be positive");
  }
  const size_t d = clusters[0].NumDims();
  const AggregatedStats agg = AggregateStats(clusters);
  if (agg.total_count == 0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: summary holds no points");
  }

  std::vector<double> centroids;
  std::vector<double> deltas;
  std::vector<double> weights;
  for (const MicroCluster& c : clusters) {
    if (c.IsEmpty()) continue;
    if (c.NumDims() != d) {
      return Status::InvalidArgument(
          "McDensityModel::Build: cluster dimension mismatch");
    }
    for (size_t j = 0; j < d; ++j) {
      centroids.push_back(c.Centroid(j));
      deltas.push_back(c.DeltaAt(j));
    }
    weights.push_back(static_cast<double>(c.Count()) /
                      static_cast<double>(agg.total_count));
  }

  std::vector<DimensionStats> bandwidth_stats = agg.dims;
  if (options.deconvolve_bandwidth) {
    // The additive EF2 sums recover the mean error mass per dimension.
    for (size_t j = 0; j < d; ++j) {
      double ef2_sum = 0.0;
      for (const MicroCluster& c : clusters) ef2_sum += c.ef2()[j];
      const double mean_psi2 =
          ef2_sum / static_cast<double>(agg.total_count);
      const double corrected =
          std::max(bandwidth_stats[j].variance - mean_psi2,
                   0.01 * bandwidth_stats[j].variance);
      bandwidth_stats[j].variance = corrected;
      bandwidth_stats[j].stddev = std::sqrt(corrected);
    }
  }
  std::vector<double> bandwidths = ComputeBandwidthsFromStats(
      bandwidth_stats, agg.total_count, options.bandwidth_rule,
      options.bandwidth_scale, options.min_bandwidth);

  ErrorKernelTable table =
      ErrorKernelTable::Build(centroids, deltas, weights.size(), d, bandwidths,
                              options.normalization);
  return McDensityModel(std::move(centroids), std::move(table),
                        std::move(weights), agg.total_count, d,
                        std::move(bandwidths), options.normalization,
                        options.log_prune_threshold);
}

void McDensityModel::SweepLogTerms(std::span<const double> x,
                                   std::span<const size_t> dims,
                                   const double* seed,
                                   std::span<double> terms) const {
  const size_t m = weights_.size();
  if (seed != nullptr) {
    std::copy_n(seed, m, terms.data());
  } else {
    std::fill_n(terms.data(), m, 0.0);
  }
  for (size_t dim : dims) {
    UDM_DCHECK(dim < num_dims_);
    SweepLogKernel(x[dim], table_.ValuesCol(dim), table_.NegInvTwoVarCol(dim),
                   table_.LogNormCol(dim), terms.data(), m);
  }
}

double McDensityModel::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  return EvaluateSubspace(x, all_dims_);
}

double McDensityModel::EvaluateSubspace(std::span<const double> x,
                                        std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  // One relaxed add per call (not per cluster): the compressed evaluator is
  // the classifier's hot path and must stay within the overhead budget.
  KernelEvalCounter().Increment(weights_.size() * dims.size());
  ScratchArena& scratch = ScratchArena::ThreadLocal();
  std::span<double> terms =
      scratch.Doubles(ScratchArena::kProducts, weights_.size());
  SweepLogTerms(x, dims, nullptr, terms);
  KahanSum sum;
  for (size_t c = 0; c < weights_.size(); ++c) {
    sum.Add(weights_[c] * std::exp(terms[c]));
  }
  return sum.Total();
}

double McDensityModel::LogEvaluateSubspace(std::span<const double> x,
                                           std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "LogEvaluateSubspace: point dimension";
  KernelEvalCounter().Increment(weights_.size() * dims.size());
  ScratchArena& scratch = ScratchArena::ThreadLocal();
  std::span<double> terms =
      scratch.Doubles(ScratchArena::kLogTerms, weights_.size());
  SweepLogTerms(x, dims, log_weights_.data(), terms);
  double max_term = -std::numeric_limits<double>::infinity();
  for (const double term : terms) max_term = std::max(max_term, term);
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  uint64_t pruned = 0;
  const double log_sum =
      PrunedLogSumExp(terms, max_term, log_prune_threshold_, &pruned);
  if (pruned != 0) PrunedTermsCounter().Increment(pruned);
  return log_sum;
}

Result<EvalResult> McDensityModel::Evaluate(const EvalRequest& request) const {
  const bool log_space = request.log_space;
  std::atomic<uint64_t> pruned_total{0};
  Result<EvalResult> result = kde_internal::BatchEvaluate(
      request, num_dims_, weights_.size(), "mc_density.eval_batch",
      [this, log_space, &pruned_total](
          std::span<const double> x, std::span<const size_t> dims,
          ExecContext& ctx, ScratchArena& scratch) -> Result<double> {
        if (!log_space) return SubspaceDensity(x, dims, ctx, scratch);
        uint64_t pruned = 0;
        Result<double> density =
            SubspaceLogDensity(x, dims, ctx, scratch, &pruned);
        if (pruned != 0) {
          pruned_total.fetch_add(pruned, std::memory_order_relaxed);
        }
        return density;
      });
  if (result.ok()) {
    result.value().stats.pruned_terms =
        pruned_total.load(std::memory_order_relaxed);
  }
  return result;
}

Result<double> McDensityModel::SubspaceDensity(std::span<const double> x,
                                               std::span<const size_t> dims,
                                               ExecContext& ctx,
                                               ScratchArena& scratch) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  Status check = ctx.Check();
  if (!check.ok()) return CountEvalTrip(std::move(check));
  Status charge = ctx.ChargeKernelEvals(weights_.size() * dims.size());
  if (!charge.ok()) return CountEvalTrip(std::move(charge));
  KernelEvalCounter().Increment(weights_.size() * dims.size());
  std::span<double> terms =
      scratch.Doubles(ScratchArena::kProducts, weights_.size());
  SweepLogTerms(x, dims, nullptr, terms);
  KahanSum sum;
  for (size_t c = 0; c < weights_.size(); ++c) {
    sum.Add(weights_[c] * std::exp(terms[c]));
  }
  return sum.Total();
}

Result<double> McDensityModel::SubspaceLogDensity(
    std::span<const double> x, std::span<const size_t> dims, ExecContext& ctx,
    ScratchArena& scratch, uint64_t* pruned_terms) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("LogEvaluateSubspace: point dimension");
  }
  Status check = ctx.Check();
  if (!check.ok()) return CountEvalTrip(std::move(check));
  Status charge = ctx.ChargeKernelEvals(weights_.size() * dims.size());
  if (!charge.ok()) return CountEvalTrip(std::move(charge));
  KernelEvalCounter().Increment(weights_.size() * dims.size());
  std::span<double> terms =
      scratch.Doubles(ScratchArena::kLogTerms, weights_.size());
  SweepLogTerms(x, dims, log_weights_.data(), terms);
  double max_term = -std::numeric_limits<double>::infinity();
  for (const double term : terms) max_term = std::max(max_term, term);
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  uint64_t pruned = 0;
  const double log_sum =
      PrunedLogSumExp(terms, max_term, log_prune_threshold_, &pruned);
  if (pruned != 0) {
    PrunedTermsCounter().Increment(pruned);
    if (pruned_terms != nullptr) *pruned_terms += pruned;
  }
  return log_sum;
}

}  // namespace udm
