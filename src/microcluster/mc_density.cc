#include "microcluster/mc_density.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "kde/bandwidth.h"
#include "kde/batch_eval.h"
#include "kde/eval_obs.h"
#include "kde/kernel.h"

namespace udm {

using kde_internal::CountEvalTrip;
using kde_internal::KernelEvalCounter;

Result<McDensityModel> McDensityModel::Build(
    std::span<const MicroCluster> clusters,
    const ErrorDensityOptions& options) {
  if (clusters.empty()) {
    return Status::InvalidArgument("McDensityModel::Build: no clusters");
  }
  if (options.bandwidth_scale <= 0.0 || options.min_bandwidth <= 0.0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: bandwidth knobs must be positive");
  }
  const size_t d = clusters[0].NumDims();
  const AggregatedStats agg = AggregateStats(clusters);
  if (agg.total_count == 0) {
    return Status::InvalidArgument(
        "McDensityModel::Build: summary holds no points");
  }

  std::vector<double> centroids;
  std::vector<double> deltas;
  std::vector<double> weights;
  for (const MicroCluster& c : clusters) {
    if (c.IsEmpty()) continue;
    if (c.NumDims() != d) {
      return Status::InvalidArgument(
          "McDensityModel::Build: cluster dimension mismatch");
    }
    for (size_t j = 0; j < d; ++j) {
      centroids.push_back(c.Centroid(j));
      deltas.push_back(c.DeltaAt(j));
    }
    weights.push_back(static_cast<double>(c.Count()) /
                      static_cast<double>(agg.total_count));
  }

  std::vector<DimensionStats> bandwidth_stats = agg.dims;
  if (options.deconvolve_bandwidth) {
    // The additive EF2 sums recover the mean error mass per dimension.
    for (size_t j = 0; j < d; ++j) {
      double ef2_sum = 0.0;
      for (const MicroCluster& c : clusters) ef2_sum += c.ef2()[j];
      const double mean_psi2 =
          ef2_sum / static_cast<double>(agg.total_count);
      const double corrected =
          std::max(bandwidth_stats[j].variance - mean_psi2,
                   0.01 * bandwidth_stats[j].variance);
      bandwidth_stats[j].variance = corrected;
      bandwidth_stats[j].stddev = std::sqrt(corrected);
    }
  }
  std::vector<double> bandwidths = ComputeBandwidthsFromStats(
      bandwidth_stats, agg.total_count, options.bandwidth_rule,
      options.bandwidth_scale, options.min_bandwidth);

  return McDensityModel(std::move(centroids), std::move(deltas),
                        std::move(weights), agg.total_count, d,
                        std::move(bandwidths), options.normalization);
}

double McDensityModel::Evaluate(std::span<const double> x) const {
  UDM_CHECK(x.size() == num_dims_) << "Evaluate: dimension mismatch";
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return EvaluateSubspace(x, all);
}

double McDensityModel::EvaluateSubspace(std::span<const double> x,
                                        std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "EvaluateSubspace: point dimension";
  // One relaxed add per call (not per cluster): the compressed evaluator is
  // the classifier's hot path and must stay within the overhead budget.
  KernelEvalCounter().Increment(weights_.size() * dims.size());
  KahanSum sum;
  for (size_t c = 0; c < weights_.size(); ++c) {
    const double* centroid = centroids_.data() + c * num_dims_;
    const double* delta = deltas_.data() + c * num_dims_;
    double log_product = 0.0;
    for (size_t dim : dims) {
      UDM_DCHECK(dim < num_dims_);
      log_product += LogErrorKernelValue(x[dim] - centroid[dim],
                                         bandwidths_[dim], delta[dim],
                                         normalization_);
    }
    sum.Add(weights_[c] * std::exp(log_product));
  }
  return sum.Total();
}

Result<EvalResult> McDensityModel::Evaluate(const EvalRequest& request) const {
  const bool log_space = request.log_space;
  return kde_internal::BatchEvaluate(
      request, num_dims_, weights_.size(), "mc_density.eval_batch",
      [this, log_space](std::span<const double> x,
                        std::span<const size_t> dims,
                        ExecContext& ctx) -> Result<double> {
        return log_space ? SubspaceLogDensity(x, dims, ctx)
                         : SubspaceDensity(x, dims, ctx);
      });
}

Result<double> McDensityModel::Evaluate(std::span<const double> x,
                                        ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("Evaluate: dimension mismatch");
  }
  std::vector<size_t> all(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
  return SubspaceDensity(x, all, ctx);
}

Result<double> McDensityModel::EvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  return SubspaceDensity(x, dims, ctx);
}

Result<double> McDensityModel::LogEvaluateSubspace(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  return SubspaceLogDensity(x, dims, ctx);
}

Result<double> McDensityModel::SubspaceDensity(std::span<const double> x,
                                               std::span<const size_t> dims,
                                               ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("EvaluateSubspace: point dimension");
  }
  Status check = ctx.Check();
  if (!check.ok()) return CountEvalTrip(std::move(check));
  Status charge = ctx.ChargeKernelEvals(weights_.size() * dims.size());
  if (!charge.ok()) return CountEvalTrip(std::move(charge));
  return EvaluateSubspace(x, dims);
}

Result<double> McDensityModel::SubspaceLogDensity(
    std::span<const double> x, std::span<const size_t> dims,
    ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("LogEvaluateSubspace: point dimension");
  }
  Status check = ctx.Check();
  if (!check.ok()) return CountEvalTrip(std::move(check));
  Status charge = ctx.ChargeKernelEvals(weights_.size() * dims.size());
  if (!charge.ok()) return CountEvalTrip(std::move(charge));
  return LogEvaluateSubspace(x, dims);
}

double McDensityModel::LogEvaluateSubspace(std::span<const double> x,
                                           std::span<const size_t> dims) const {
  UDM_CHECK(x.size() == num_dims_) << "LogEvaluateSubspace: point dimension";
  KernelEvalCounter().Increment(weights_.size() * dims.size());
  std::vector<double> log_terms(weights_.size());
  double max_term = -std::numeric_limits<double>::infinity();
  for (size_t c = 0; c < weights_.size(); ++c) {
    const double* centroid = centroids_.data() + c * num_dims_;
    const double* delta = deltas_.data() + c * num_dims_;
    double log_product = std::log(weights_[c]);
    for (size_t dim : dims) {
      log_product += LogErrorKernelValue(x[dim] - centroid[dim],
                                         bandwidths_[dim], delta[dim],
                                         normalization_);
    }
    log_terms[c] = log_product;
    max_term = std::max(max_term, log_product);
  }
  if (!std::isfinite(max_term)) {
    return -std::numeric_limits<double>::infinity();
  }
  KahanSum sum;
  for (double term : log_terms) sum.Add(std::exp(term - max_term));
  return max_term + std::log(sum.Total());
}

}  // namespace udm
