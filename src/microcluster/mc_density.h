#ifndef UDM_MICROCLUSTER_MC_DENSITY_H_
#define UDM_MICROCLUSTER_MC_DENSITY_H_

#include <cstddef>
#include <span>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "kde/error_kde.h"
#include "kde/eval.h"
#include "microcluster/microcluster.h"

namespace udm {

/// Scalable error-based density estimation from a micro-cluster summary
/// (paper §2.1, Eqs. 9-10): each cluster acts as one pseudo-point at its
/// centroid c(C) with error width Δ_j(C) (Lemma 1), weighted by its
/// population,
///
///   f_Q(x) = (1/N) · Σ_C n(C) · Π_j Q'_{h_j}(x_j − c_j(C), Δ_j(C)).
///
/// Evaluation is O(m·|S|) per query for m clusters — independent of the
/// data size N, which is the paper's scalability argument. Bandwidths are
/// Silverman over the *underlying data's* statistics, recovered from the
/// additive CF tuples, so no second pass over the data is needed.
class McDensityModel {
 public:
  /// Builds the model from a summary. `clusters` must be non-empty with at
  /// least one member point overall; empty clusters are skipped.
  static Result<McDensityModel> Build(std::span<const MicroCluster> clusters,
                                      const ErrorDensityOptions& options = {});

  /// Density at `x` over all dimensions (Eq. 10).
  double Evaluate(std::span<const double> x) const;

  /// Density at `x` over the subspace `dims` — the g(x, S, D) primitive the
  /// classifier computes per candidate subspace (§3).
  double EvaluateSubspace(std::span<const double> x,
                          std::span<const size_t> dims) const;

  /// log of EvaluateSubspace via log-sum-exp (stable in high dimensions).
  double LogEvaluateSubspace(std::span<const double> x,
                             std::span<const size_t> dims) const;

  /// Batch evaluation behind the unified EvalRequest API (kde/eval.h):
  /// densities — or log-densities with request.log_space — for every
  /// query point, optionally parallel and under an ExecContext. One model
  /// evaluation is only O(m·|S|), so the context is checked per chunk of
  /// queries rather than mid-sum; results are bit-identical to a serial
  /// loop at any thread count.
  Result<EvalResult> Evaluate(const EvalRequest& request) const;

  /// Deprecated pre-EvalRequest context-aware signatures, kept as shims
  /// for one release. Same semantics as a one-point EvalRequest except
  /// that deadline/budget trips always fail (no partial batch to return).
  [[deprecated("build an EvalRequest and call Evaluate(request)")]]
  Result<double> Evaluate(std::span<const double> x, ExecContext& ctx) const;
  [[deprecated("build an EvalRequest and call Evaluate(request)")]]
  Result<double> EvaluateSubspace(std::span<const double> x,
                                  std::span<const size_t> dims,
                                  ExecContext& ctx) const;
  [[deprecated(
      "build an EvalRequest with log_space and call Evaluate(request)")]]
  Result<double> LogEvaluateSubspace(std::span<const double> x,
                                     std::span<const size_t> dims,
                                     ExecContext& ctx) const;

  /// Number of pseudo-points m (non-empty clusters).
  size_t num_clusters() const { return weights_.size(); }

  /// Total underlying data count N = Σ n(C).
  uint64_t total_count() const { return total_count_; }

  size_t num_dims() const { return num_dims_; }

  /// Per-dimension Silverman bandwidths recovered from the summary.
  const std::vector<double>& bandwidths() const { return bandwidths_; }

  /// Pseudo-point centroids, row-major num_clusters() x num_dims(). The
  /// model's mass concentrates at these points — useful as probe locations
  /// for drift scoring and diagnostics.
  std::span<const double> centroids() const { return centroids_; }

  /// Per-cluster weights n(C)/N, aligned with centroids().
  std::span<const double> weights() const { return weights_; }

 private:
  /// Context-aware implementations (check + charge, then the O(m·|S|)
  /// sum) shared by every public entry point.
  Result<double> SubspaceDensity(std::span<const double> x,
                                 std::span<const size_t> dims,
                                 ExecContext& ctx) const;
  Result<double> SubspaceLogDensity(std::span<const double> x,
                                    std::span<const size_t> dims,
                                    ExecContext& ctx) const;

  McDensityModel(std::vector<double> centroids, std::vector<double> deltas,
                 std::vector<double> weights, uint64_t total_count,
                 size_t num_dims, std::vector<double> bandwidths,
                 KernelNormalization normalization)
      : centroids_(std::move(centroids)),
        deltas_(std::move(deltas)),
        weights_(std::move(weights)),
        total_count_(total_count),
        num_dims_(num_dims),
        bandwidths_(std::move(bandwidths)),
        normalization_(normalization) {}

  std::vector<double> centroids_;  // row-major m x d
  std::vector<double> deltas_;     // row-major m x d (Δ_j per cluster)
  std::vector<double> weights_;    // n(C)/N per cluster
  uint64_t total_count_;
  size_t num_dims_;
  std::vector<double> bandwidths_;
  KernelNormalization normalization_;
};

}  // namespace udm

#endif  // UDM_MICROCLUSTER_MC_DENSITY_H_
