#ifndef UDM_MICROCLUSTER_MC_DENSITY_H_
#define UDM_MICROCLUSTER_MC_DENSITY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "common/scratch.h"
#include "kde/eval.h"
#include "kde/kernel.h"
#include "kde/kernel_table.h"
#include "kde/spatial_index.h"
#include "microcluster/microcluster.h"

namespace udm {

/// Scalable error-based density estimation from a micro-cluster summary
/// (paper §2.1, Eqs. 9-10): each cluster acts as one pseudo-point at its
/// centroid c(C) with error width Δ_j(C) (Lemma 1), weighted by its
/// population,
///
///   f_Q(x) = (1/N) · Σ_C n(C) · Π_j Q'_{h_j}(x_j − c_j(C), Δ_j(C)).
///
/// Evaluation is O(m·|S|) per query for m clusters — independent of the
/// data size N, which is the paper's scalability argument — and for large
/// summaries the same cell-pruned spatial index as the exact estimators
/// applies over the centroids (the per-cell max-variance bound absorbs
/// each cluster's Δ spread, and the per-cell max log-weight seeds the
/// bound, so radius-wide clusters cannot be pruned optimistically).
/// Bandwidths are Silverman over the *underlying data's* statistics,
/// recovered from the additive CF tuples, so no second pass over the data
/// is needed.
class McDensityModel {
 public:
  /// Builds the model from a summary. `clusters` must be non-empty with at
  /// least one member point overall; empty clusters are skipped. Shared
  /// tuning knobs come from DensityEvalOptions (kde/eval.h).
  static Result<McDensityModel> Build(std::span<const MicroCluster> clusters,
                                      const DensityEvalOptions& options = {});

  /// Density at `x` over all dimensions (Eq. 10).
  double Evaluate(std::span<const double> x) const;

  /// Density at `x` over the subspace `dims` — the g(x, S, D) primitive the
  /// classifier computes per candidate subspace (§3).
  double EvaluateSubspace(std::span<const double> x,
                          std::span<const size_t> dims) const;

  /// log of EvaluateSubspace via log-sum-exp (stable in high dimensions).
  double LogEvaluateSubspace(std::span<const double> x,
                             std::span<const size_t> dims) const;

  /// Batch evaluation behind the unified EvalRequest API (kde/eval.h):
  /// densities — or log-densities with request.log_space — for every
  /// query point, optionally parallel and under an ExecContext.
  /// request.index selects the spatial-index policy; every mode returns
  /// bit-identical densities at any thread count.
  Result<EvalResult> Evaluate(const EvalRequest& request) const;

  /// Number of pseudo-points m (non-empty clusters).
  size_t num_clusters() const { return weights_.size(); }

  /// Total underlying data count N = Σ n(C).
  uint64_t total_count() const { return total_count_; }

  size_t num_dims() const { return num_dims_; }

  /// Per-dimension Silverman bandwidths recovered from the summary.
  const std::vector<double>& bandwidths() const { return bandwidths_; }

  /// Pseudo-point centroids, row-major num_clusters() x num_dims(). The
  /// model's mass concentrates at these points — useful as probe locations
  /// for drift scoring and diagnostics. When a spatial index was built the
  /// clusters are stored in its cell-contiguous order (centroids() and
  /// weights() stay pairwise aligned, but not in Build input order).
  std::span<const double> centroids() const { return centroids_; }

  /// Per-cluster weights n(C)/N, aligned with centroids().
  std::span<const double> weights() const { return weights_; }

  /// Whether Build built a spatial index (IndexMode::kForce succeeds).
  bool has_index() const { return index_.has_value(); }
  /// Occupied index cells (0 without an index) — serving observability.
  size_t index_cells() const {
    return index_.has_value() ? index_->num_cells() : 0;
  }

 private:
  /// Context-aware implementations (check + charge, then the O(m·|S|)
  /// column-major table sweep — cell-pruned when `index` is non-null)
  /// shared by every public entry point. `counters`, when non-null,
  /// accumulates pruning/cell work accounting.
  Result<double> SubspaceDensity(std::span<const double> x,
                                 std::span<const size_t> dims,
                                 ExecContext& ctx, ScratchArena& scratch,
                                 const kde_internal::SpatialIndex* index,
                                 kde_internal::IndexedEvalCounters* counters)
      const;
  Result<double> SubspaceLogDensity(
      std::span<const double> x, std::span<const size_t> dims,
      ExecContext& ctx, ScratchArena& scratch,
      const kde_internal::SpatialIndex* index,
      kde_internal::IndexedEvalCounters* counters) const;

  /// The shared sweep core over table positions [first, first+len):
  /// fills `terms[0..len)` with `seed[first+i] + Σ_dims log Q'` (seed =
  /// nullptr seeds 0 — the linear path; log_weights_ — the log path),
  /// routed through the model's SIMD dispatch.
  void SweepLogTerms(std::span<const double> x, std::span<const size_t> dims,
                     const double* seed, size_t first, size_t len,
                     double* terms) const;

  /// Dense (non-indexed) evaluation of a tile of `count` queries against
  /// shared table panels (see ErrorKernelDensity::EvalTileDense); the
  /// weighted sum needs no ÷N — weights are already normalized.
  Status EvalTileDense(std::span<const double> points, size_t count,
                       std::span<const size_t> dims, bool log_space,
                       ExecContext& ctx, ScratchArena& scratch, double* out,
                       kde_internal::IndexedEvalCounters* counters) const;

  McDensityModel(std::vector<double> centroids,
                 kde_internal::ErrorKernelTable table,
                 std::vector<double> weights, uint64_t total_count,
                 size_t num_dims, std::vector<double> bandwidths,
                 const DensityEvalOptions& options);

  std::vector<double> centroids_;  // row-major m x d (public accessor)
  /// Column-major precompute over (centroid, Δ) pseudo-points (§4f).
  kde_internal::ErrorKernelTable table_;
  std::vector<double> weights_;      // n(C)/N per cluster
  std::vector<double> log_weights_;  // log(n(C)/N), precomputed
  uint64_t total_count_;
  size_t num_dims_;
  std::vector<size_t> all_dims_;  // cached identity subspace (0..d-1)
  std::vector<double> bandwidths_;
  KernelNormalization normalization_;
  double log_prune_threshold_;
  /// Kernel dispatch resolved from DensityEvalOptions::simd at build time.
  const kde_internal::SimdDispatch* simd_;
  /// Cell-pruned spatial index over the (re-packed) pseudo-points, seeded
  /// with per-cell max log-weights; absent below
  /// DensityIndexOptions::min_points or when disabled.
  std::optional<kde_internal::SpatialIndex> index_;
};

}  // namespace udm

#endif  // UDM_MICROCLUSTER_MC_DENSITY_H_
