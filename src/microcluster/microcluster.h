#ifndef UDM_MICROCLUSTER_MICROCLUSTER_H_
#define UDM_MICROCLUSTER_MICROCLUSTER_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// An error-based micro-cluster (paper Definition 1): the additive
/// (3d+1)-tuple
///
///   CFT(C) = ( CF2x(C), EF2x(C), CF1x(C), n(C) )
///
/// where, per dimension p over member points X_i1..X_in,
///   CF2x_p = Σ_j (x^p_ij)²      (sum of squared values)
///   EF2x_p = Σ_j ψ_p(X_ij)²     (sum of squared errors)
///   CF1x_p = Σ_j x^p_ij         (sum of values)
///   n      = number of points.
///
/// All statistics are additive, so clusters can be built in one pass and
/// merged associatively (tested in microcluster_test.cc). The derived
/// quantities — centroid, member variance, and the pseudo-point error Δ of
/// Lemma 1 — are computable from the tuple alone, which is what lets the
/// density machinery run from a main-memory summary instead of the data.
class MicroCluster {
 public:
  /// An empty cluster over `num_dims` dimensions.
  explicit MicroCluster(size_t num_dims)
      : cf1_(num_dims, 0.0), cf2_(num_dims, 0.0), ef2_(num_dims, 0.0) {}

  /// Reconstructs a cluster from its raw tuple (deserialization / foreign
  /// summaries). Vectors must share a nonzero size; EF2 entries and the
  /// implied member variance must be non-negative.
  static Result<MicroCluster> FromTuple(std::vector<double> cf1,
                                        std::vector<double> cf2,
                                        std::vector<double> ef2,
                                        uint64_t count);

  size_t NumDims() const { return cf1_.size(); }

  /// Number of member points n(C).
  uint64_t Count() const { return count_; }

  bool IsEmpty() const { return count_ == 0; }

  /// Absorbs one point with its error vector ψ (both sized NumDims()).
  void AddPoint(std::span<const double> values, std::span<const double> psi);

  /// Absorbs another cluster (the additivity property).
  void Merge(const MicroCluster& other);

  /// The subtractive counterpart of Merge: returns this − other, i.e. the
  /// statistics of the points present here but not in `other`. Valid when
  /// `other` summarizes a *subset* of this cluster's points (CluStream's
  /// snapshot algebra: current − old snapshot = the recent horizon).
  /// Fails if the tuples are inconsistent (other.Count() > Count(), or a
  /// CF2/EF2 entry would go negative beyond rounding).
  Result<MicroCluster> Subtract(const MicroCluster& other) const;

  /// Centroid coordinate along `dim`: CF1x_j / n. Requires non-empty.
  double Centroid(size_t dim) const {
    UDM_DCHECK(!IsEmpty() && dim < NumDims());
    return cf1_[dim] / static_cast<double>(count_);
  }

  /// Full centroid c(C).
  std::vector<double> CentroidVector() const;

  /// Member variance along `dim`: CF2x_j/n − (CF1x_j/n)² (clamped at 0
  /// against floating-point cancellation).
  double VarianceAt(size_t dim) const;

  /// Mean squared error along `dim`: EF2x_j / n.
  double MeanSquaredErrorAt(size_t dim) const {
    UDM_DCHECK(!IsEmpty() && dim < NumDims());
    return ef2_[dim] / static_cast<double>(count_);
  }

  /// The squared pseudo-point error Δ_j(C)² of Lemma 1:
  ///
  ///   Δ_j(C)² = CF2x_j/n − (CF1x_j/n)² + EF2x_j/n
  ///           = member variance + mean squared error.
  ///
  /// (The typeset Eq. 7 transposes two signs; the bias²+variance proof
  /// fixes the intended expression — see DESIGN.md §2.3.)
  double Delta2At(size_t dim) const {
    return VarianceAt(dim) + MeanSquaredErrorAt(dim);
  }

  /// Δ_j(C): the error width used in the micro-cluster kernel (Eq. 9).
  double DeltaAt(size_t dim) const;

  /// Raw tuple accessors (CF1x, CF2x, EF2x).
  std::span<const double> cf1() const { return cf1_; }
  std::span<const double> cf2() const { return cf2_; }
  std::span<const double> ef2() const { return ef2_; }

 private:
  std::vector<double> cf1_;
  std::vector<double> cf2_;
  std::vector<double> ef2_;
  uint64_t count_ = 0;
};

/// Aggregates the per-dimension statistics of the *underlying data* from a
/// set of micro-clusters (Σ over clusters of CF1/CF2 and counts). Used to
/// compute Silverman bandwidths without revisiting the raw points.
struct AggregatedStats {
  std::vector<DimensionStats> dims;
  uint64_t total_count = 0;
};

AggregatedStats AggregateStats(std::span<const MicroCluster> clusters);

}  // namespace udm

#endif  // UDM_MICROCLUSTER_MICROCLUSTER_H_
