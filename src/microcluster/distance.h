#ifndef UDM_MICROCLUSTER_DISTANCE_H_
#define UDM_MICROCLUSTER_DISTANCE_H_

#include <span>

namespace udm {

/// Distance function used to assign points to micro-cluster centroids.
enum class AssignmentDistance {
  /// The paper's error-adjusted metric (Eq. 5) — the default.
  kErrorAdjusted,
  /// Plain squared Euclidean (the CluStream/BIRCH convention); kept for the
  /// bench/ablation_distance comparison and for the zero-error case, where
  /// the two coincide.
  kEuclidean,
};

/// The error-adjusted squared distance of Eq. 5:
///
///   dist(Y, c) = Σ_j max{ 0, (Y_j − c_j)² − ψ_j(Y)² }
///
/// Dimensions whose displacement is within the point's own error contribute
/// nothing — the "best-case" reading the paper motivates with Figure 2
/// (a point is assigned where its error ellipse could have placed it).
double ErrorAdjustedDistance(std::span<const double> point,
                             std::span<const double> psi,
                             std::span<const double> centroid);

/// Dispatches on `distance`; `psi` is ignored for kEuclidean.
double AssignmentDistanceValue(AssignmentDistance distance,
                               std::span<const double> point,
                               std::span<const double> psi,
                               std::span<const double> centroid);

}  // namespace udm

#endif  // UDM_MICROCLUSTER_DISTANCE_H_
