#ifndef UDM_MICROCLUSTER_CLUSTREAM_H_
#define UDM_MICROCLUSTER_CLUSTREAM_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "microcluster/distance.h"
#include "microcluster/microcluster.h"

namespace udm {

/// CluStream-style maintenance [2] — the baseline the paper's §2.1
/// variation is defined *against*: "a new micro-cluster is created
/// whenever the incoming data point does not naturally fit in a
/// micro-cluster [and] clusters are discarded", whereas the paper's
/// maintainer (clusterer.h) never creates after seeding and never drops.
///
/// This maintainer implements the classic behavior on error-based CFT
/// tuples so the two policies can be compared head-to-head
/// (bench/ablation_maintenance):
///
///  * a point joins its nearest cluster only if it falls within that
///    cluster's maximum boundary (boundary_factor × the cluster's RMS
///    deviation; for singleton clusters, the distance to the nearest other
///    cluster);
///  * otherwise it founds a new cluster, and the budget is restored by
///    merging the two closest existing clusters (the additivity of
///    Definition 1 makes the merge exact).
class CluStreamMaintainer {
 public:
  struct Options {
    size_t num_clusters = 140;
    /// Max-boundary multiplier t: join if dist <= (t · RMS deviation)².
    /// CluStream's recommended t is around 2.
    double boundary_factor = 2.0;
    AssignmentDistance distance = AssignmentDistance::kErrorAdjusted;
  };

  static Result<CluStreamMaintainer> Create(size_t num_dims,
                                            const Options& options);
  static Result<CluStreamMaintainer> Create(size_t num_dims) {
    return Create(num_dims, Options());
  }

  /// Processes one point; returns the index of the absorbing cluster
  /// (possibly a newly created one).
  size_t Add(std::span<const double> values, std::span<const double> psi);

  /// Bulk path over an uncertain dataset.
  Status AddDataset(const Dataset& data, const ErrorModel& errors);

  std::span<const MicroCluster> clusters() const { return clusters_; }

  uint64_t num_points() const { return num_points_; }
  uint64_t num_creations() const { return num_creations_; }
  uint64_t num_merges() const { return num_merges_; }
  size_t num_dims() const { return num_dims_; }

 private:
  CluStreamMaintainer(size_t num_dims, const Options& options)
      : num_dims_(num_dims), options_(options) {}

  /// Squared maximum boundary of cluster `c`.
  double MaxBoundary2(size_t c) const;

  /// Merges the two closest clusters (centroid distance) to free a slot.
  void MergeClosestPair();

  void RefreshCentroid(size_t c);

  size_t num_dims_;
  Options options_;
  std::vector<MicroCluster> clusters_;
  std::vector<double> centroids_;  // row-major cache
  uint64_t num_points_ = 0;
  uint64_t num_creations_ = 0;
  uint64_t num_merges_ = 0;
};

}  // namespace udm

#endif  // UDM_MICROCLUSTER_CLUSTREAM_H_
