#include "classify/nn_classifier.h"

#include <algorithm>
#include <limits>

#include "common/math_util.h"

namespace udm {

Result<NnClassifier> NnClassifier::Train(const Dataset& data,
                                         const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("NnClassifier::Train: empty dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("NnClassifier::Train: k == 0");
  }
  const size_t num_classes = data.NumClasses();
  if (num_classes == 0) {
    return Status::InvalidArgument("NnClassifier::Train: unlabeled dataset");
  }
  std::vector<double> values(data.values().begin(), data.values().end());
  std::vector<int> labels(data.labels().begin(), data.labels().end());
  return NnClassifier(std::move(values), std::move(labels), data.NumDims(),
                      num_classes, options.k);
}

Result<int> NnClassifier::Predict(std::span<const double> x) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument("NnClassifier::Predict: dimension mismatch");
  }
  const size_t n = labels_.size();
  if (k_ == 1) {
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const std::span<const double> row{values_.data() + i * num_dims_,
                                        num_dims_};
      const double dist = SquaredEuclidean(x, row);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    return labels_[best];
  }

  // k-NN: partial sort of (distance, index) pairs, then majority vote.
  std::vector<std::pair<double, size_t>> dists(n);
  for (size_t i = 0; i < n; ++i) {
    const std::span<const double> row{values_.data() + i * num_dims_,
                                      num_dims_};
    dists[i] = {SquaredEuclidean(x, row), i};
  }
  const size_t k = std::min(k_, n);
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  std::vector<size_t> votes(num_classes_, 0);
  for (size_t i = 0; i < k; ++i) {
    const int label = labels_[dists[i].second];
    if (label >= 0) ++votes[static_cast<size_t>(label)];
  }
  size_t best_class = 0;
  for (size_t c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best_class]) best_class = c;
  }
  return static_cast<int>(best_class);
}

}  // namespace udm
