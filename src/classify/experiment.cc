#include "classify/experiment.h"

#include <algorithm>

#include "classify/metrics.h"
#include "classify/nn_classifier.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "error/perturbation.h"

namespace udm {

namespace {

/// One full protocol run at a specific seed.
Result<ClassificationExperimentResult> RunOnce(
    const Dataset& clean, const ClassificationExperimentConfig& config) {

  // Inject errors per the paper's protocol; the miner sees only the noisy
  // values and the ψ estimates.
  PerturbationOptions perturb_options;
  perturb_options.f = config.f;
  perturb_options.seed = config.seed ^ 0x5DEECE66DULL;
  UDM_ASSIGN_OR_RETURN(UncertainDataset uncertain,
                       Perturb(clean, perturb_options));

  Rng split_rng(config.seed);
  const SplitIndices split =
      MakeSplit(clean.NumRows(), config.test_fraction, &split_rng);
  if (split.train.empty() || split.test.empty()) {
    return Status::InvalidArgument(
        "RunClassificationExperiment: empty train or test split");
  }

  const Dataset train = uncertain.data.Select(split.train);
  const ErrorModel train_errors = uncertain.errors.Select(split.train);

  std::vector<size_t> test_indices = split.test;
  if (config.max_test_examples != 0 &&
      test_indices.size() > config.max_test_examples) {
    test_indices.resize(config.max_test_examples);
  }
  const Dataset test = uncertain.data.Select(test_indices);

  DensityBasedClassifier::Options density_options = config.density_options;
  density_options.num_clusters = config.num_clusters;
  density_options.accuracy_threshold = config.accuracy_threshold;

  ClassificationExperimentResult result;
  result.num_train = train.NumRows();
  result.num_test = test.NumRows();

  // (1) Error-adjusted density classifier — the paper's method. Training
  // and testing are timed here (Figs. 8-11).
  Stopwatch train_timer;
  UDM_ASSIGN_OR_RETURN(
      const DensityBasedClassifier adjusted,
      DensityBasedClassifier::Train(train, train_errors, density_options));
  result.train_seconds_per_example =
      train_timer.ElapsedSeconds() / static_cast<double>(train.NumRows());

  Stopwatch test_timer;
  UDM_ASSIGN_OR_RETURN(const ConfusionMatrix adjusted_matrix,
                       EvaluateClassifier(adjusted, test, config.threads));
  result.test_seconds_per_example =
      test_timer.ElapsedSeconds() / static_cast<double>(test.NumRows());
  result.accuracy_error_adjusted = adjusted_matrix.Accuracy();

  // (2) The same algorithm with all entries assumed exact (§4
  // comparator (2)).
  const ErrorModel zero_errors =
      ErrorModel::Zero(train.NumRows(), train.NumDims());
  UDM_ASSIGN_OR_RETURN(
      const DensityBasedClassifier unadjusted,
      DensityBasedClassifier::Train(train, zero_errors, density_options));
  UDM_ASSIGN_OR_RETURN(const ConfusionMatrix unadjusted_matrix,
                       EvaluateClassifier(unadjusted, test, config.threads));
  result.accuracy_no_adjust = unadjusted_matrix.Accuracy();

  // (3) Nearest-neighbor baseline.
  UDM_ASSIGN_OR_RETURN(const NnClassifier nn, NnClassifier::Train(train));
  UDM_ASSIGN_OR_RETURN(const ConfusionMatrix nn_matrix,
                       EvaluateClassifier(nn, test, config.threads));
  result.accuracy_nn = nn_matrix.Accuracy();

  return result;
}

}  // namespace

Result<ClassificationExperimentResult> RunClassificationExperiment(
    const Dataset& clean, const ClassificationExperimentConfig& config) {
  if (clean.NumClasses() < 2) {
    return Status::InvalidArgument(
        "RunClassificationExperiment: need a labeled dataset with >= 2 "
        "classes");
  }
  if (config.repeats == 0) {
    return Status::InvalidArgument(
        "RunClassificationExperiment: repeats must be >= 1");
  }
  ClassificationExperimentResult total;
  for (size_t r = 0; r < config.repeats; ++r) {
    ClassificationExperimentConfig run_config = config;
    run_config.seed = config.seed + 0x9E3779B9ULL * r;
    UDM_ASSIGN_OR_RETURN(const ClassificationExperimentResult run,
                         RunOnce(clean, run_config));
    total.accuracy_error_adjusted += run.accuracy_error_adjusted;
    total.accuracy_no_adjust += run.accuracy_no_adjust;
    total.accuracy_nn += run.accuracy_nn;
    total.train_seconds_per_example += run.train_seconds_per_example;
    total.test_seconds_per_example += run.test_seconds_per_example;
    total.num_train = run.num_train;
    total.num_test = run.num_test;
  }
  const double inv = 1.0 / static_cast<double>(config.repeats);
  total.accuracy_error_adjusted *= inv;
  total.accuracy_no_adjust *= inv;
  total.accuracy_nn *= inv;
  total.train_seconds_per_example *= inv;
  total.test_seconds_per_example *= inv;
  return total;
}

}  // namespace udm
