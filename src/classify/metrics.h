#ifndef UDM_CLASSIFY_METRICS_H_
#define UDM_CLASSIFY_METRICS_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// A k x k confusion matrix: rows index the true class, columns the
/// predicted class.
class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(size_t num_classes)
      : num_classes_(num_classes), counts_(num_classes * num_classes, 0) {}

  size_t NumClasses() const { return num_classes_; }

  /// Records one (truth, prediction) observation.
  void Record(int truth, int predicted) {
    UDM_CHECK(truth >= 0 && static_cast<size_t>(truth) < num_classes_);
    UDM_CHECK(predicted >= 0 && static_cast<size_t>(predicted) < num_classes_);
    ++counts_[static_cast<size_t>(truth) * num_classes_ +
              static_cast<size_t>(predicted)];
  }

  /// Count of rows with true class `truth` predicted as `predicted`.
  size_t At(size_t truth, size_t predicted) const {
    UDM_DCHECK(truth < num_classes_ && predicted < num_classes_);
    return counts_[truth * num_classes_ + predicted];
  }

  /// Total observations.
  size_t Total() const;

  /// Correctly classified observations (the trace).
  size_t Correct() const;

  /// Correct / Total (0 when empty).
  double Accuracy() const;

  /// Recall of class `c`: At(c,c) / row-sum (0 when the class is absent).
  double Recall(size_t c) const;

  /// Precision of class `c`: At(c,c) / column-sum (0 when never predicted).
  double Precision(size_t c) const;

  /// Unweighted mean of per-class F1 scores.
  double MacroF1() const;

 private:
  size_t num_classes_;
  std::vector<size_t> counts_;
};

/// Runs `classifier` over every row of `test` and tallies the confusion
/// matrix against the true labels. Rows must be labeled with labels in
/// [0, classifier.NumClasses()). `threads` parallelizes the prediction
/// pass (0 = serial); the tally itself is always done in row order, so
/// the matrix is identical at any thread count.
Result<ConfusionMatrix> EvaluateClassifier(const Classifier& classifier,
                                           const Dataset& test,
                                           size_t threads = 0);

}  // namespace udm

#endif  // UDM_CLASSIFY_METRICS_H_
