#include "classify/metrics.h"

#include "classify/batch.h"

namespace udm {

size_t ConfusionMatrix::Total() const {
  size_t total = 0;
  for (size_t c : counts_) total += c;
  return total;
}

size_t ConfusionMatrix::Correct() const {
  size_t correct = 0;
  for (size_t c = 0; c < num_classes_; ++c) correct += At(c, c);
  return correct;
}

double ConfusionMatrix::Accuracy() const {
  const size_t total = Total();
  return total == 0 ? 0.0
                    : static_cast<double>(Correct()) /
                          static_cast<double>(total);
}

double ConfusionMatrix::Recall(size_t c) const {
  UDM_CHECK(c < num_classes_);
  size_t row = 0;
  for (size_t p = 0; p < num_classes_; ++p) row += At(c, p);
  return row == 0 ? 0.0
                  : static_cast<double>(At(c, c)) / static_cast<double>(row);
}

double ConfusionMatrix::Precision(size_t c) const {
  UDM_CHECK(c < num_classes_);
  size_t col = 0;
  for (size_t t = 0; t < num_classes_; ++t) col += At(t, c);
  return col == 0 ? 0.0
                  : static_cast<double>(At(c, c)) / static_cast<double>(col);
}

double ConfusionMatrix::MacroF1() const {
  double sum = 0.0;
  for (size_t c = 0; c < num_classes_; ++c) {
    const double p = Precision(c);
    const double r = Recall(c);
    sum += (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
  return num_classes_ == 0 ? 0.0 : sum / static_cast<double>(num_classes_);
}

Result<ConfusionMatrix> EvaluateClassifier(const Classifier& classifier,
                                           const Dataset& test,
                                           size_t threads) {
  ConfusionMatrix matrix(classifier.NumClasses());
  for (size_t i = 0; i < test.NumRows(); ++i) {
    const int truth = test.Label(i);
    if (truth < 0 ||
        static_cast<size_t>(truth) >= classifier.NumClasses()) {
      return Status::InvalidArgument(
          "EvaluateClassifier: test label out of range at row " +
          std::to_string(i));
    }
  }
  UDM_ASSIGN_OR_RETURN(const std::vector<int> predictions,
                       BatchPredict(classifier, test, threads));
  for (size_t i = 0; i < test.NumRows(); ++i) {
    matrix.Record(test.Label(i), predictions[i]);
  }
  return matrix;
}

}  // namespace udm
