#include "classify/batch.h"

#include "common/parallel.h"

namespace udm {

Result<std::vector<int>> BatchPredict(const Classifier& classifier,
                                      const Dataset& data,
                                      size_t num_threads) {
  const size_t n = data.NumRows();
  std::vector<int> predictions(n, -1);
  if (n == 0) return predictions;

  ParallelForOptions options;
  options.threads = num_threads;
  // One row per chunk: a Predict is at least micro-cluster-model work
  // (hundreds of kernel terms), far above the per-chunk scheduling cost,
  // and single-row chunks give the best load balance for skewed rows.
  options.chunk_size = 1;
  const ParallelForResult loop = ParallelFor(
      n, options, [&](size_t begin, size_t end, size_t /*chunk*/) -> Status {
        for (size_t i = begin; i < end; ++i) {
          UDM_ASSIGN_OR_RETURN(predictions[i],
                               classifier.Predict(data.Row(i)));
        }
        return Status::OK();
      });
  if (!loop.ok()) return loop.status;
  return predictions;
}

}  // namespace udm
