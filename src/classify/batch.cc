#include "classify/batch.h"

#include <atomic>
#include <thread>

namespace udm {

Result<std::vector<int>> BatchPredict(const Classifier& classifier,
                                      const Dataset& data,
                                      size_t num_threads) {
  const size_t n = data.NumRows();
  std::vector<int> predictions(n, -1);
  if (n == 0) return predictions;

  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  num_threads = std::min(num_threads, n);

  if (num_threads == 1) {
    for (size_t i = 0; i < n; ++i) {
      UDM_ASSIGN_OR_RETURN(predictions[i], classifier.Predict(data.Row(i)));
    }
    return predictions;
  }

  // Work-stealing by atomic row counter; first error wins and is reported.
  std::atomic<size_t> next_row{0};
  std::atomic<bool> failed{false};
  std::vector<Status> thread_errors(num_threads);
  std::vector<std::thread> workers;
  workers.reserve(num_threads);
  for (size_t t = 0; t < num_threads; ++t) {
    workers.emplace_back([&, t] {
      for (;;) {
        const size_t i = next_row.fetch_add(1, std::memory_order_relaxed);
        if (i >= n || failed.load(std::memory_order_relaxed)) return;
        const Result<int> prediction = classifier.Predict(data.Row(i));
        if (!prediction.ok()) {
          thread_errors[t] = prediction.status();
          failed.store(true, std::memory_order_relaxed);
          return;
        }
        predictions[i] = prediction.value();
      }
    });
  }
  for (std::thread& worker : workers) worker.join();

  if (failed.load()) {
    for (const Status& status : thread_errors) {
      if (!status.ok()) return status;
    }
    return Status::Internal("BatchPredict: failure flag set without status");
  }
  return predictions;
}

}  // namespace udm
