#include "classify/density_classifier.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace udm {

Result<DensityBasedClassifier> DensityBasedClassifier::Train(
    const Dataset& data, const ErrorModel& errors, const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("DensityBasedClassifier: empty dataset");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "DensityBasedClassifier: error model shape mismatch");
  }
  if (options.accuracy_threshold <= 0.0) {
    return Status::InvalidArgument(
        "DensityBasedClassifier: accuracy_threshold must be > 0");
  }
  const size_t k = data.NumClasses();
  if (k < 2) {
    return Status::InvalidArgument(
        "DensityBasedClassifier: need at least two classes");
  }

  MicroClusterer::Options mc_options;
  mc_options.num_clusters = options.num_clusters;
  mc_options.distance = options.distance;

  // Summaries are built separately for D and for each D_i (§3); this is the
  // entire preprocessing step.
  UDM_ASSIGN_OR_RETURN(std::vector<MicroCluster> global_summary,
                       BuildMicroClusters(data, errors, mc_options));
  UDM_ASSIGN_OR_RETURN(McDensityModel global_model,
                       McDensityModel::Build(global_summary, options.density));

  std::vector<McDensityModel> class_models;
  std::vector<size_t> class_counts(k, 0);
  class_models.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    const std::vector<size_t> indices =
        data.IndicesOfLabel(static_cast<int>(c));
    if (indices.empty()) {
      return Status::InvalidArgument(
          "DensityBasedClassifier: class " + std::to_string(c) +
          " has no training rows (labels must be dense)");
    }
    class_counts[c] = indices.size();
    const Dataset subset = data.Select(indices);
    const ErrorModel subset_errors = errors.Select(indices);
    UDM_ASSIGN_OR_RETURN(std::vector<MicroCluster> summary,
                         BuildMicroClusters(subset, subset_errors, mc_options));
    UDM_ASSIGN_OR_RETURN(McDensityModel model,
                         McDensityModel::Build(summary, options.density));
    class_models.push_back(std::move(model));
  }

  const std::string name =
      errors.IsZero() ? "density_no_adjust" : "density_error_adjusted";
  return DensityBasedClassifier(std::move(class_models),
                                std::move(global_model),
                                std::move(class_counts), data.NumDims(),
                                options, name);
}

DensityBasedClassifier::SubspaceScore DensityBasedClassifier::ScoreSubspace(
    std::span<const double> x, std::span<const size_t> dims) const {
  const double log_global = global_model_.LogEvaluateSubspace(x, dims);
  const double log_total =
      std::log(static_cast<double>(global_model_.total_count()));
  SubspaceScore best;
  bool first = true;
  for (size_t c = 0; c < class_models_.size(); ++c) {
    const double log_class = class_models_[c].LogEvaluateSubspace(x, dims);
    // log A(x,S,l_c) = log|D_c| + log g(x,S,D_c) − log|D| − log g(x,S,D).
    const double log_acc =
        std::log(static_cast<double>(class_counts_[c])) + log_class -
        log_total - log_global;
    if (first || log_acc > best.log_accuracy) {
      best.label = static_cast<int>(c);
      best.log_accuracy = log_acc;
      first = false;
    }
  }
  return best;
}

double DensityBasedClassifier::LogLocalAccuracy(
    std::span<const double> x, std::span<const size_t> dims, int label) const {
  UDM_CHECK(label >= 0 && static_cast<size_t>(label) < class_models_.size())
      << "LogLocalAccuracy: label out of range";
  const double log_global = global_model_.LogEvaluateSubspace(x, dims);
  const double log_total =
      std::log(static_cast<double>(global_model_.total_count()));
  const double log_class =
      class_models_[static_cast<size_t>(label)].LogEvaluateSubspace(x, dims);
  return std::log(static_cast<double>(class_counts_[label])) + log_class -
         log_total - log_global;
}

Result<int> DensityBasedClassifier::Predict(std::span<const double> x) const {
  UDM_ASSIGN_OR_RETURN(const Explanation explanation, Explain(x));
  return explanation.predicted;
}

Result<int> DensityBasedClassifier::Predict(std::span<const double> x,
                                            ExecContext& ctx) const {
  UDM_ASSIGN_OR_RETURN(const Explanation explanation, Explain(x, ctx));
  return explanation.predicted;
}

Result<DensityBasedClassifier::Explanation> DensityBasedClassifier::Explain(
    std::span<const double> x) const {
  ExecContext unbounded;
  return Explain(x, unbounded);
}

Result<DensityBasedClassifier::Explanation> DensityBasedClassifier::Explain(
    std::span<const double> x, ExecContext& ctx) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument(
        "DensityBasedClassifier: point dimension mismatch");
  }
  UDM_RETURN_IF_ERROR(ctx.Check());
  const double log_threshold = std::log(options_.accuracy_threshold);

  struct Qualified {
    std::vector<size_t> dims;
    SubspaceScore score;
  };

  size_t evaluations = 0;
  const auto budget_left = [&]() {
    return options_.max_evaluations == 0 ||
           evaluations < options_.max_evaluations;
  };

  // Kernel-eval cost of scoring one subspace dimension: every pseudo-point
  // in the global model plus every class model contributes one term.
  size_t pseudo_per_dim = global_model_.num_clusters();
  for (const McDensityModel& model : class_models_) {
    pseudo_per_dim += model.num_clusters();
  }

  // The roll-up is an anytime algorithm: a deadline/budget violation at a
  // subspace boundary stops expansion and the prediction is made from the
  // subspaces qualified so far. Cancellation is never absorbed.
  StopCause stop = StopCause::kCompleted;
  Status cancelled;
  const auto boundary_ok = [&](size_t subspace_dims) {
    Status s = ctx.ChargeKernelEvals(subspace_dims * pseudo_per_dim);
    if (s.ok()) s = ctx.Check();
    if (s.ok()) return true;
    if (s.code() == StatusCode::kCancelled) {
      cancelled = s;
    } else {
      stop = s.code() == StatusCode::kDeadlineExceeded ? StopCause::kDeadline
                                                       : StopCause::kBudget;
    }
    return false;
  };

  // Level 1: all singleton subspaces.
  std::vector<Qualified> level1;
  for (size_t j = 0; j < num_dims_; ++j) {
    if (!boundary_ok(1)) break;
    const size_t dims[] = {j};
    ++evaluations;
    const SubspaceScore score = ScoreSubspace(x, dims);
    if (score.log_accuracy > log_threshold) {
      level1.push_back({{j}, score});
    }
  }
  if (!cancelled.ok()) return cancelled;

  std::vector<Qualified> qualifying = level1;
  std::vector<Qualified> frontier = level1;

  // Roll-up: join L_i with L_1 to form C_{i+1} (Figure 3).
  size_t level = 1;
  while (!frontier.empty() && budget_left() && stop == StopCause::kCompleted) {
    if (options_.max_subspace_dim != 0 && level >= options_.max_subspace_dim) {
      break;
    }
    std::set<std::vector<size_t>> candidates;
    for (const Qualified& base : frontier) {
      for (const Qualified& single : level1) {
        const size_t extra = single.dims[0];
        if (std::binary_search(base.dims.begin(), base.dims.end(), extra)) {
          continue;
        }
        std::vector<size_t> extended = base.dims;
        extended.insert(
            std::upper_bound(extended.begin(), extended.end(), extra), extra);
        candidates.insert(std::move(extended));
      }
    }
    std::vector<Qualified> next;
    for (const std::vector<size_t>& dims : candidates) {
      if (!budget_left()) break;
      if (!boundary_ok(dims.size())) break;
      ++evaluations;
      const SubspaceScore score = ScoreSubspace(x, dims);
      if (score.log_accuracy > log_threshold) {
        next.push_back({dims, score});
      }
    }
    qualifying.insert(qualifying.end(), next.begin(), next.end());
    frontier = std::move(next);
    ++level;
  }
  if (!cancelled.ok()) return cancelled;

  Explanation explanation;
  explanation.stop_cause = stop;
  if (qualifying.empty()) {
    // Fallback (paper unspecified): dominant class over all dimensions.
    // Runs even after a deadline/budget stop so every query yields a
    // prediction; the charge is recorded but cannot fail the query.
    std::vector<size_t> all(num_dims_);
    for (size_t j = 0; j < num_dims_; ++j) all[j] = j;
    (void)ctx.ChargeKernelEvals(num_dims_ * pseudo_per_dim);
    const SubspaceScore score = ScoreSubspace(x, all);
    explanation.predicted = score.label;
    explanation.used_fallback = true;
    return explanation;
  }

  // Greedy selection of non-overlapping subspaces by descending accuracy.
  std::sort(qualifying.begin(), qualifying.end(),
            [](const Qualified& a, const Qualified& b) {
              if (a.score.log_accuracy != b.score.log_accuracy) {
                return a.score.log_accuracy > b.score.log_accuracy;
              }
              return a.dims < b.dims;  // deterministic tie-break
            });
  std::vector<bool> used_dims(num_dims_, false);
  for (const Qualified& q : qualifying) {
    if (options_.max_selected_subspaces != 0 &&
        explanation.selected.size() >= options_.max_selected_subspaces) {
      break;
    }
    bool overlaps = false;
    for (size_t dim : q.dims) {
      if (used_dims[dim]) {
        overlaps = true;
        break;
      }
    }
    if (overlaps) continue;
    for (size_t dim : q.dims) used_dims[dim] = true;
    explanation.selected.push_back(
        Rule{q.dims, q.score.label, q.score.log_accuracy});
  }

  // Majority vote among selected rules; ties go to the earliest (highest
  // accuracy) rule voting for that class.
  std::vector<size_t> votes(class_models_.size(), 0);
  for (const Rule& rule : explanation.selected) {
    ++votes[static_cast<size_t>(rule.label)];
  }
  size_t best_votes = 0;
  for (size_t votes_c : votes) best_votes = std::max(best_votes, votes_c);
  for (const Rule& rule : explanation.selected) {
    if (votes[static_cast<size_t>(rule.label)] == best_votes) {
      explanation.predicted = rule.label;
      break;
    }
  }
  return explanation;
}

}  // namespace udm
