#ifndef UDM_CLASSIFY_NN_CLASSIFIER_H_
#define UDM_CLASSIFY_NN_CLASSIFIER_H_

#include <span>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// The paper's baseline (§4, comparator (1)): "a standard nearest neighbor
/// classification algorithm which reported the class label of its nearest
/// record". Plain Euclidean distance on the observed (noisy) values; no
/// error information is used — which is exactly why it degrades drastically
/// as the error level rises (Figs. 4 and 6).
///
/// `k > 1` generalizes to majority-vote k-NN (ties broken by the nearer
/// neighbor set); the paper's experiments use k = 1.
class NnClassifier : public Classifier {
 public:
  struct Options {
    size_t k = 1;
  };

  /// Copies the labeled training data. Requires a non-empty labeled dataset.
  static Result<NnClassifier> Train(const Dataset& data,
                                    const Options& options);
  static Result<NnClassifier> Train(const Dataset& data) {
    return Train(data, Options());
  }

  Result<int> Predict(std::span<const double> x) const override;
  size_t NumClasses() const override { return num_classes_; }
  std::string Name() const override { return "nn"; }

 private:
  NnClassifier(std::vector<double> values, std::vector<int> labels,
               size_t num_dims, size_t num_classes, size_t k)
      : values_(std::move(values)),
        labels_(std::move(labels)),
        num_dims_(num_dims),
        num_classes_(num_classes),
        k_(k) {}

  std::vector<double> values_;  // row-major training points
  std::vector<int> labels_;
  size_t num_dims_;
  size_t num_classes_;
  size_t k_;
};

}  // namespace udm

#endif  // UDM_CLASSIFY_NN_CLASSIFIER_H_
