#include "classify/error_nn_classifier.h"

#include <algorithm>
#include <limits>

namespace udm {

Result<ErrorAwareNnClassifier> ErrorAwareNnClassifier::Train(
    const Dataset& data, const ErrorModel& errors, const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("ErrorAwareNnClassifier: empty dataset");
  }
  if (options.k == 0) {
    return Status::InvalidArgument("ErrorAwareNnClassifier: k == 0");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "ErrorAwareNnClassifier: error model shape mismatch");
  }
  const size_t num_classes = data.NumClasses();
  if (num_classes == 0) {
    return Status::InvalidArgument(
        "ErrorAwareNnClassifier: unlabeled dataset");
  }
  std::vector<double> values(data.values().begin(), data.values().end());
  std::vector<double> psi;
  psi.reserve(values.size());
  for (size_t i = 0; i < data.NumRows(); ++i) {
    const auto row = errors.RowPsi(i);
    psi.insert(psi.end(), row.begin(), row.end());
  }
  std::vector<int> labels(data.labels().begin(), data.labels().end());
  return ErrorAwareNnClassifier(std::move(values), std::move(psi),
                                std::move(labels), data.NumDims(),
                                num_classes, options.k);
}

Result<int> ErrorAwareNnClassifier::Predict(std::span<const double> x) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument(
        "ErrorAwareNnClassifier::Predict: dimension mismatch");
  }
  const size_t n = labels_.size();
  // Eq. 5 with the roles set by Figure 1: the *training* record's error
  // region determines how near the query effectively is.
  const auto adjusted_distance = [&](size_t i) {
    const std::span<const double> row{values_.data() + i * num_dims_,
                                      num_dims_};
    const std::span<const double> row_psi{psi_.data() + i * num_dims_,
                                          num_dims_};
    return ErrorAdjustedDistance(row, row_psi, x);
  };

  if (k_ == 1) {
    size_t best = 0;
    double best_dist = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < n; ++i) {
      const double dist = adjusted_distance(i);
      if (dist < best_dist) {
        best_dist = dist;
        best = i;
      }
    }
    return labels_[best];
  }

  std::vector<std::pair<double, size_t>> dists(n);
  for (size_t i = 0; i < n; ++i) dists[i] = {adjusted_distance(i), i};
  const size_t k = std::min(k_, n);
  std::partial_sort(dists.begin(), dists.begin() + k, dists.end());
  std::vector<size_t> votes(num_classes_, 0);
  for (size_t i = 0; i < k; ++i) {
    const int label = labels_[dists[i].second];
    if (label >= 0) ++votes[static_cast<size_t>(label)];
  }
  size_t best_class = 0;
  for (size_t c = 1; c < num_classes_; ++c) {
    if (votes[c] > votes[best_class]) best_class = c;
  }
  return static_cast<int>(best_class);
}

}  // namespace udm
