#include "classify/bayes_classifier.h"

#include <cmath>

namespace udm {

Result<BayesDensityClassifier> BayesDensityClassifier::Train(
    const Dataset& data, const ErrorModel& errors, const Options& options) {
  if (data.NumRows() == 0) {
    return Status::InvalidArgument("BayesDensityClassifier: empty dataset");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "BayesDensityClassifier: error model shape mismatch");
  }
  const size_t k = data.NumClasses();
  if (k < 2) {
    return Status::InvalidArgument(
        "BayesDensityClassifier: need at least two classes");
  }

  MicroClusterer::Options mc_options;
  mc_options.num_clusters = options.num_clusters;
  mc_options.distance = options.distance;

  std::vector<McDensityModel> class_models;
  std::vector<size_t> class_counts(k, 0);
  class_models.reserve(k);
  for (size_t c = 0; c < k; ++c) {
    const std::vector<size_t> indices =
        data.IndicesOfLabel(static_cast<int>(c));
    if (indices.empty()) {
      return Status::InvalidArgument("BayesDensityClassifier: class " +
                                     std::to_string(c) + " has no rows");
    }
    class_counts[c] = indices.size();
    const Dataset subset = data.Select(indices);
    const ErrorModel subset_errors = errors.Select(indices);
    UDM_ASSIGN_OR_RETURN(std::vector<MicroCluster> summary,
                         BuildMicroClusters(subset, subset_errors, mc_options));
    UDM_ASSIGN_OR_RETURN(McDensityModel model,
                         McDensityModel::Build(summary, options.density));
    class_models.push_back(std::move(model));
  }
  return BayesDensityClassifier(std::move(class_models),
                                std::move(class_counts), data.NumDims());
}

Result<std::vector<double>> BayesDensityClassifier::LogScores(
    std::span<const double> x) const {
  if (x.size() != num_dims_) {
    return Status::InvalidArgument(
        "BayesDensityClassifier: point dimension mismatch");
  }
  std::vector<size_t> all_dims(num_dims_);
  for (size_t j = 0; j < num_dims_; ++j) all_dims[j] = j;
  std::vector<double> scores(class_models_.size());
  for (size_t c = 0; c < class_models_.size(); ++c) {
    scores[c] = std::log(static_cast<double>(class_counts_[c])) +
                class_models_[c].LogEvaluateSubspace(x, all_dims);
  }
  return scores;
}

Result<int> BayesDensityClassifier::Predict(std::span<const double> x) const {
  UDM_ASSIGN_OR_RETURN(const std::vector<double> scores, LogScores(x));
  size_t best = 0;
  for (size_t c = 1; c < scores.size(); ++c) {
    if (scores[c] > scores[best]) best = c;
  }
  return static_cast<int>(best);
}

}  // namespace udm
