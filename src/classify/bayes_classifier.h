#ifndef UDM_CLASSIFY_BAYES_CLASSIFIER_H_
#define UDM_CLASSIFY_BAYES_CLASSIFIER_H_

#include <span>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "kde/error_kde.h"
#include "microcluster/clusterer.h"
#include "microcluster/mc_density.h"

namespace udm {

/// Full-dimensional Bayes-style density classifier:
///
///   label(x) = argmax_i |D_i| · g(x, D_i)
///
/// over the error-adjusted micro-cluster densities — the paper's density
/// machinery *without* the instance-specific subspace roll-up of Figure 3.
/// Exposed as its own classifier so the roll-up's contribution can be
/// ablated (bench/ablation_subspace); it also serves as the fallback rule
/// inside DensityBasedClassifier.
class BayesDensityClassifier : public Classifier {
 public:
  struct Options {
    size_t num_clusters = 140;
    AssignmentDistance distance = AssignmentDistance::kErrorAdjusted;
    DensityEvalOptions density;
  };

  /// Trains per-class summaries. Labels must be dense in [0, k), k >= 2.
  static Result<BayesDensityClassifier> Train(const Dataset& data,
                                              const ErrorModel& errors,
                                              const Options& options);
  static Result<BayesDensityClassifier> Train(const Dataset& data,
                                              const ErrorModel& errors) {
    return Train(data, errors, Options());
  }

  Result<int> Predict(std::span<const double> x) const override;

  /// Per-class log scores log|D_i| + log g(x, D_i) (argmax = prediction).
  Result<std::vector<double>> LogScores(std::span<const double> x) const;

  size_t NumClasses() const override { return class_models_.size(); }
  std::string Name() const override { return "bayes_density"; }

 private:
  BayesDensityClassifier(std::vector<McDensityModel> class_models,
                         std::vector<size_t> class_counts, size_t num_dims)
      : class_models_(std::move(class_models)),
        class_counts_(std::move(class_counts)),
        num_dims_(num_dims) {}

  std::vector<McDensityModel> class_models_;
  std::vector<size_t> class_counts_;
  size_t num_dims_;
};

}  // namespace udm

#endif  // UDM_CLASSIFY_BAYES_CLASSIFIER_H_
