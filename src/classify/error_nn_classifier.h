#ifndef UDM_CLASSIFY_ERROR_NN_CLASSIFIER_H_
#define UDM_CLASSIFY_ERROR_NN_CLASSIFIER_H_

#include <span>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "microcluster/distance.h"

namespace udm {

/// Error-aware nearest neighbor — the paper's Figure 1 scenario made
/// concrete. Plain 1-NN picks the training record with the smallest raw
/// Euclidean distance to the query; but a training point Z with a large
/// error along some dimension "may have a much higher probability of being
/// the nearest neighbor" when the query falls inside Z's error boundary.
/// This classifier ranks training records by the error-adjusted distance
/// of Eq. 5 (each record discounted by its own ψ), so records whose error
/// region covers the query win even if their observed position is farther.
///
/// Not one of the paper's §4 comparators — it is the minimal error-aware
/// upgrade of the NN baseline, exposed to make Figure 1 testable. It also
/// demonstrates that figure's limits: under *heavy* errors, best-case
/// matching lets the noisiest records (whose Eq. 5 distance to everything
/// approaches zero) claim most queries, and accuracy falls below plain NN
/// (tests/error_nn_test.cc measures this). That pathology is exactly why
/// the paper routes error awareness through the density transform, where
/// a noisy record's influence is *spread out* rather than sharpened.
class ErrorAwareNnClassifier : public Classifier {
 public:
  struct Options {
    size_t k = 1;
  };

  /// Copies the labeled training data and its error table.
  static Result<ErrorAwareNnClassifier> Train(const Dataset& data,
                                              const ErrorModel& errors,
                                              const Options& options);
  static Result<ErrorAwareNnClassifier> Train(const Dataset& data,
                                              const ErrorModel& errors) {
    return Train(data, errors, Options());
  }

  Result<int> Predict(std::span<const double> x) const override;
  size_t NumClasses() const override { return num_classes_; }
  std::string Name() const override { return "error_aware_nn"; }

 private:
  ErrorAwareNnClassifier(std::vector<double> values, std::vector<double> psi,
                         std::vector<int> labels, size_t num_dims,
                         size_t num_classes, size_t k)
      : values_(std::move(values)),
        psi_(std::move(psi)),
        labels_(std::move(labels)),
        num_dims_(num_dims),
        num_classes_(num_classes),
        k_(k) {}

  std::vector<double> values_;
  std::vector<double> psi_;
  std::vector<int> labels_;
  size_t num_dims_;
  size_t num_classes_;
  size_t k_;
};

}  // namespace udm

#endif  // UDM_CLASSIFY_ERROR_NN_CLASSIFIER_H_
