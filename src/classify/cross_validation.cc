#include "classify/cross_validation.h"

#include <cmath>

#include "classify/metrics.h"
#include "common/parallel.h"
#include "common/random.h"

namespace udm {

Result<CrossValidationResult> CrossValidate(
    const Dataset& data, const ErrorModel& errors,
    const ClassifierFactory& factory, const CrossValidationOptions& options) {
  ExecContext unbounded;
  return CrossValidate(data, errors, factory, options, unbounded);
}

Result<CrossValidationResult> CrossValidate(
    const Dataset& data, const ErrorModel& errors,
    const ClassifierFactory& factory, const CrossValidationOptions& options,
    ExecContext& ctx) {
  if (!factory) {
    return Status::InvalidArgument("CrossValidate: null factory");
  }
  if (options.folds < 2) {
    return Status::InvalidArgument("CrossValidate: folds must be >= 2");
  }
  if (data.NumRows() < options.folds) {
    return Status::InvalidArgument(
        "CrossValidate: fewer rows than folds");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "CrossValidate: error model shape mismatch");
  }

  UDM_RETURN_IF_ERROR(ctx.Check());

  Rng rng(options.seed);
  std::vector<size_t> order(data.NumRows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);

  CrossValidationResult result;
  const size_t n = data.NumRows();
  // One fold per chunk: ParallelFor checks `ctx` before each chunk, which
  // reproduces the serial fold-boundary check, and its contiguous-prefix
  // failure semantics match the partial-sweep contract — on a deadline or
  // budget stop only the accuracies of the completed prefix are kept.
  std::vector<double> fold_accuracies(options.folds, 0.0);
  ParallelForOptions loop_options;
  loop_options.threads = options.threads;
  loop_options.chunk_size = 1;
  loop_options.ctx = &ctx;
  const ParallelForResult loop = ParallelFor(
      options.folds, loop_options,
      [&](size_t, size_t, size_t fold) -> Status {
        const size_t begin = fold * n / options.folds;
        const size_t end = (fold + 1) * n / options.folds;
        std::vector<size_t> test_idx(order.begin() + begin,
                                     order.begin() + end);
        std::vector<size_t> train_idx;
        train_idx.reserve(n - test_idx.size());
        train_idx.insert(train_idx.end(), order.begin(),
                         order.begin() + begin);
        train_idx.insert(train_idx.end(), order.begin() + end, order.end());

        const Dataset train = data.Select(train_idx);
        const ErrorModel train_errors = errors.Select(train_idx);
        const Dataset test = data.Select(test_idx);

        Result<std::unique_ptr<Classifier>> classifier =
            factory(train, train_errors);
        if (!classifier.ok()) {
          return classifier.status().WithContext("fold " +
                                                 std::to_string(fold));
        }
        UDM_ASSIGN_OR_RETURN(const ConfusionMatrix matrix,
                             EvaluateClassifier(**classifier, test));
        fold_accuracies[fold] = matrix.Accuracy();
        return Status::OK();
      });
  if (!loop.ok()) {
    const StatusCode code = loop.status.code();
    const bool truncated = code == StatusCode::kDeadlineExceeded ||
                           code == StatusCode::kResourceExhausted;
    // Cancellation, factory and evaluation errors fail the whole sweep,
    // as does a deadline/budget hit before the first fold completes.
    if (!truncated || loop.chunks_completed == 0) return loop.status;
    result.stop_cause = code == StatusCode::kDeadlineExceeded
                            ? StopCause::kDeadline
                            : StopCause::kBudget;
  }
  fold_accuracies.resize(loop.chunks_completed);
  result.fold_accuracies = std::move(fold_accuracies);

  result.folds_completed = result.fold_accuracies.size();
  const size_t completed = result.folds_completed;
  double sum = 0.0;
  for (double acc : result.fold_accuracies) sum += acc;
  result.mean_accuracy = sum / static_cast<double>(completed);
  double sq = 0.0;
  for (double acc : result.fold_accuracies) {
    const double dev = acc - result.mean_accuracy;
    sq += dev * dev;
  }
  result.stddev_accuracy =
      completed > 1 ? std::sqrt(sq / static_cast<double>(completed - 1)) : 0.0;
  return result;
}

}  // namespace udm
