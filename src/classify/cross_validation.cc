#include "classify/cross_validation.h"

#include <cmath>

#include "classify/metrics.h"
#include "common/random.h"

namespace udm {

Result<CrossValidationResult> CrossValidate(
    const Dataset& data, const ErrorModel& errors,
    const ClassifierFactory& factory, const CrossValidationOptions& options) {
  ExecContext unbounded;
  return CrossValidate(data, errors, factory, options, unbounded);
}

Result<CrossValidationResult> CrossValidate(
    const Dataset& data, const ErrorModel& errors,
    const ClassifierFactory& factory, const CrossValidationOptions& options,
    ExecContext& ctx) {
  if (!factory) {
    return Status::InvalidArgument("CrossValidate: null factory");
  }
  if (options.folds < 2) {
    return Status::InvalidArgument("CrossValidate: folds must be >= 2");
  }
  if (data.NumRows() < options.folds) {
    return Status::InvalidArgument(
        "CrossValidate: fewer rows than folds");
  }
  if (errors.NumRows() != data.NumRows() ||
      errors.NumDims() != data.NumDims()) {
    return Status::InvalidArgument(
        "CrossValidate: error model shape mismatch");
  }

  UDM_RETURN_IF_ERROR(ctx.Check());

  Rng rng(options.seed);
  std::vector<size_t> order(data.NumRows());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.Shuffle(&order);

  CrossValidationResult result;
  const size_t n = data.NumRows();
  for (size_t fold = 0; fold < options.folds; ++fold) {
    // Fold-boundary check: a deadline/budget hit after at least one fold
    // returns the partial sweep; before that it is an error.
    const Status boundary = ctx.Check();
    if (!boundary.ok()) {
      if (boundary.code() == StatusCode::kCancelled || fold == 0) {
        return boundary;
      }
      result.stop_cause = boundary.code() == StatusCode::kDeadlineExceeded
                              ? StopCause::kDeadline
                              : StopCause::kBudget;
      break;
    }
    const size_t begin = fold * n / options.folds;
    const size_t end = (fold + 1) * n / options.folds;
    std::vector<size_t> test_idx(order.begin() + begin, order.begin() + end);
    std::vector<size_t> train_idx;
    train_idx.reserve(n - test_idx.size());
    train_idx.insert(train_idx.end(), order.begin(), order.begin() + begin);
    train_idx.insert(train_idx.end(), order.begin() + end, order.end());

    const Dataset train = data.Select(train_idx);
    const ErrorModel train_errors = errors.Select(train_idx);
    const Dataset test = data.Select(test_idx);

    Result<std::unique_ptr<Classifier>> classifier =
        factory(train, train_errors);
    if (!classifier.ok()) {
      return classifier.status().WithContext("fold " + std::to_string(fold));
    }
    UDM_ASSIGN_OR_RETURN(const ConfusionMatrix matrix,
                         EvaluateClassifier(**classifier, test));
    result.fold_accuracies.push_back(matrix.Accuracy());
  }

  result.folds_completed = result.fold_accuracies.size();
  const size_t completed = result.folds_completed;
  double sum = 0.0;
  for (double acc : result.fold_accuracies) sum += acc;
  result.mean_accuracy = sum / static_cast<double>(completed);
  double sq = 0.0;
  for (double acc : result.fold_accuracies) {
    const double dev = acc - result.mean_accuracy;
    sq += dev * dev;
  }
  result.stddev_accuracy =
      completed > 1 ? std::sqrt(sq / static_cast<double>(completed - 1)) : 0.0;
  return result;
}

}  // namespace udm
