#ifndef UDM_CLASSIFY_BATCH_H_
#define UDM_CLASSIFY_BATCH_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// Classifies every row of `data`, optionally across threads. All the
/// library's classifiers are immutable after training, so concurrent
/// Predict calls are safe; the paper's testing cost (Figs. 9-10) is
/// embarrassingly parallel across query points.
///
/// `num_threads == 0` picks the hardware concurrency; 1 runs inline.
/// Results are row-aligned with `data` regardless of thread count, and a
/// failure in any prediction fails the whole call with that status.
Result<std::vector<int>> BatchPredict(const Classifier& classifier,
                                      const Dataset& data,
                                      size_t num_threads = 0);

}  // namespace udm

#endif  // UDM_CLASSIFY_BATCH_H_
