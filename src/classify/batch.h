#ifndef UDM_CLASSIFY_BATCH_H_
#define UDM_CLASSIFY_BATCH_H_

#include <cstddef>
#include <vector>

#include "classify/classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// Classifies every row of `data`, optionally across threads. All the
/// library's classifiers are immutable after training, so concurrent
/// Predict calls are safe; the paper's testing cost (Figs. 9-10) is
/// embarrassingly parallel across query points.
///
/// `num_threads` follows the library-wide threads knob: 0 (the default)
/// or 1 runs serially inline; N > 1 uses the shared pool via ParallelFor.
/// Results are row-aligned with `data` and bit-identical at any thread
/// count; a failure in any prediction fails the whole call with the
/// status of the lowest failing row.
Result<std::vector<int>> BatchPredict(const Classifier& classifier,
                                      const Dataset& data,
                                      size_t num_threads = 0);

}  // namespace udm

#endif  // UDM_CLASSIFY_BATCH_H_
