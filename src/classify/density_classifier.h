#ifndef UDM_CLASSIFY_DENSITY_CLASSIFIER_H_
#define UDM_CLASSIFY_DENSITY_CLASSIFIER_H_

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "classify/classifier.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"
#include "kde/error_kde.h"
#include "microcluster/clusterer.h"
#include "microcluster/mc_density.h"

namespace udm {

/// The paper's density-based classifier (§3, Figure 3): an instance-specific
/// rule learner over error-adjusted subspace densities.
///
/// Training (one pass, §3 "performed only once as a pre-processing step"):
/// build error-based micro-cluster summaries for the full data D and for
/// each class subset D_i, then wrap each summary in an McDensityModel so
/// subspace densities g(x, S, ·) are O(q·|S|) at query time.
///
/// Prediction for a test point x (the roll-up of Figure 3):
///   1. Score every singleton subspace with the density-based local accuracy
///        A(x, S, l_i) = (|D_i|·g(x,S,D_i)) / (|D|·g(x,S,D))     (Eq. 11)
///      and keep those whose best class beats the threshold `a` (set L_1).
///   2. Repeatedly join L_i with L_1 to form candidate (i+1)-dimensional
///      subspaces, keep the qualifying ones, until no candidates survive.
///   3. From L = ∪L_i, greedily select the highest-accuracy subspaces that
///      do not overlap previously selected ones (at most p when p > 0).
///   4. Report the majority dominant class (Eq. 12) among the selected
///      subspaces; ties go to the subspace ranked higher. When no subspace
///      beats the threshold, fall back to the dominant class over the full
///      dimensionality (the paper leaves this case unspecified).
///
/// The "no error adjustment" comparator of §4 is this same class trained
/// with `ErrorModel::Zero` — every formula degrades to its classical form.
class DensityBasedClassifier : public Classifier {
 public:
  struct Options {
    /// Micro-cluster budget q for the global summary and for each class
    /// summary (paper sweeps 20..140).
    size_t num_clusters = 140;
    /// The local-accuracy threshold `a` of Figure 3. Since Σ_i |D_i|·g_i ≈
    /// |D|·g (the global density is the class mixture), the accuracies
    /// A(x,S,l_i) sum to ≈ 1 over classes — A behaves like a local
    /// posterior, and `a` is a confidence bar on it. Values near 1 demand
    /// near-certain subspaces (frequent fallback); values at or below the
    /// largest class prior qualify weak rules everywhere. 0.75 is a robust
    /// middle ground across the paper's datasets.
    double accuracy_threshold = 0.75;
    /// Paper's p: stop after selecting this many non-overlapping subspaces
    /// (0 = exhaust all possibilities).
    size_t max_selected_subspaces = 0;
    /// Safety cap on the roll-up depth (0 = run until C_{i+1} is empty, as
    /// in Figure 3).
    size_t max_subspace_dim = 0;
    /// Hard cap on candidate-subspace density evaluations per prediction;
    /// expansion stops once exceeded. Guards pathological blowups in very
    /// high dimensions; 0 = unlimited.
    size_t max_evaluations = 200000;
    /// Assignment metric for micro-clustering (ablation knob).
    AssignmentDistance distance = AssignmentDistance::kErrorAdjusted;
    /// Kernel/bandwidth knobs shared by all density models.
    DensityEvalOptions density;
  };

  /// One selected rule in an explained prediction.
  struct Rule {
    std::vector<size_t> dims;  ///< subspace S (sorted dimension indices)
    int label = 0;             ///< dom(x, S)
    double log_accuracy = 0.0; ///< log A(x, S, dom)
  };

  /// A prediction plus the subspace rules that produced it (§3's
  /// "relevant classification rules for a particular test instance").
  struct Explanation {
    int predicted = 0;
    /// True when no subspace beat the threshold and the full-dimensional
    /// fallback decided.
    bool used_fallback = false;
    std::vector<Rule> selected;
    /// kCompleted for a full roll-up; kDeadline/kBudget when the
    /// ExecContext cut expansion short and the prediction was made from
    /// the subspaces qualified so far (anytime behavior).
    StopCause stop_cause = StopCause::kCompleted;
  };

  /// Trains from labeled uncertain data: `errors` must match `data`'s
  /// shape; labels must be dense in [0, k) with k >= 2.
  static Result<DensityBasedClassifier> Train(const Dataset& data,
                                              const ErrorModel& errors,
                                              const Options& options);
  static Result<DensityBasedClassifier> Train(const Dataset& data,
                                              const ErrorModel& errors) {
    return Train(data, errors, Options());
  }

  Result<int> Predict(std::span<const double> x) const override;

  /// Predict with the selected rules exposed.
  Result<Explanation> Explain(std::span<const double> x) const;

  /// Deadline/cancellation/budget-aware prediction. The roll-up of
  /// Figure 3 is an anytime algorithm: a deadline or budget hit stops
  /// subspace expansion and the prediction is made from whatever
  /// qualified so far (full-dimensional fallback when nothing did), with
  /// `stop_cause` recording the truncation. Cancellation fails with
  /// kCancelled before any work.
  Result<Explanation> Explain(std::span<const double> x,
                              ExecContext& ctx) const;
  Result<int> Predict(std::span<const double> x, ExecContext& ctx) const;

  size_t NumClasses() const override { return class_counts_.size(); }
  std::string Name() const override { return name_; }

  size_t num_dims() const { return num_dims_; }

  /// log A(x, S, l): the density-based local accuracy of Eq. 11 in log
  /// space. Exposed for tests and for density-driven applications beyond
  /// classification.
  double LogLocalAccuracy(std::span<const double> x,
                          std::span<const size_t> dims, int label) const;

 private:
  DensityBasedClassifier(std::vector<McDensityModel> class_models,
                         McDensityModel global_model,
                         std::vector<size_t> class_counts, size_t num_dims,
                         Options options, std::string name)
      : class_models_(std::move(class_models)),
        global_model_(std::move(global_model)),
        class_counts_(std::move(class_counts)),
        num_dims_(num_dims),
        options_(std::move(options)),
        name_(std::move(name)) {}

  /// Best class and its log-accuracy for subspace S at x.
  struct SubspaceScore {
    int label = 0;
    double log_accuracy = 0.0;
  };
  SubspaceScore ScoreSubspace(std::span<const double> x,
                              std::span<const size_t> dims) const;

  std::vector<McDensityModel> class_models_;  // one per class, index = label
  McDensityModel global_model_;               // over all of D
  std::vector<size_t> class_counts_;          // |D_i|
  size_t num_dims_;
  Options options_;
  std::string name_;
};

}  // namespace udm

#endif  // UDM_CLASSIFY_DENSITY_CLASSIFIER_H_
