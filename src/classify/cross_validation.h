#ifndef UDM_CLASSIFY_CROSS_VALIDATION_H_
#define UDM_CLASSIFY_CROSS_VALIDATION_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "classify/classifier.h"
#include "common/exec_context.h"
#include "common/result.h"
#include "dataset/dataset.h"
#include "error/error_model.h"

namespace udm {

/// k-fold cross-validation over uncertain data. Folds are stratified at
/// the row level (random permutation, contiguous slices); the error table
/// is partitioned in lockstep with the data so every trainer sees aligned
/// (values, ψ) pairs.
struct CrossValidationOptions {
  size_t folds = 5;
  uint64_t seed = 1;
  /// Folds trained/evaluated concurrently: 0 (default) or 1 runs the
  /// folds serially; N > 1 runs up to N folds at once. The fold
  /// partition, per-fold training, and per-fold accuracy are identical
  /// at any width; on a deadline/budget stop only a contiguous prefix
  /// of folds is reported (same as the serial sweep). Prediction within
  /// each fold stays serial either way.
  size_t threads = 0;
};

struct CrossValidationResult {
  std::vector<double> fold_accuracies;
  double mean_accuracy = 0.0;
  /// Sample standard deviation across folds (0 for a single fold).
  double stddev_accuracy = 0.0;
  /// Folds actually trained and evaluated (== options.folds for a full
  /// run; fewer when the ExecContext truncated the sweep).
  size_t folds_completed = 0;
  /// kCompleted, or kDeadline/kBudget when folds were skipped; the
  /// mean/stddev then summarize only the completed folds.
  StopCause stop_cause = StopCause::kCompleted;
};

/// Builds a classifier from a training slice. Factories wrap any trainer:
/// `[&](const Dataset& d, const ErrorModel& e) ->
///      Result<std::unique_ptr<Classifier>> { ... }`.
using ClassifierFactory =
    std::function<Result<std::unique_ptr<Classifier>>(const Dataset&,
                                                      const ErrorModel&)>;

/// Runs k-fold cross-validation. Requires folds >= 2, a labeled dataset
/// with at least `folds` rows, and an error model matching the data shape.
/// Note: with few rows per class a fold may lose a class entirely, in
/// which case the factory's error is propagated.
Result<CrossValidationResult> CrossValidate(
    const Dataset& data, const ErrorModel& errors,
    const ClassifierFactory& factory, const CrossValidationOptions& options);

/// Deadline/cancellation/budget-aware variant: the context is checked at
/// fold boundaries. Cancellation fails with kCancelled; a deadline/budget
/// hit before the first fold completes fails with that status, afterwards
/// the partial result is returned with stop_cause/folds_completed set.
Result<CrossValidationResult> CrossValidate(
    const Dataset& data, const ErrorModel& errors,
    const ClassifierFactory& factory, const CrossValidationOptions& options,
    ExecContext& ctx);

}  // namespace udm

#endif  // UDM_CLASSIFY_CROSS_VALIDATION_H_
