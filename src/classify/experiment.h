#ifndef UDM_CLASSIFY_EXPERIMENT_H_
#define UDM_CLASSIFY_EXPERIMENT_H_

#include <cstdint>

#include "classify/density_classifier.h"
#include "common/result.h"
#include "dataset/dataset.h"

namespace udm {

/// The paper's §4 protocol, packaged so every figure harness runs the same
/// loop: perturb a clean dataset at error level f, split train/test, train
/// the three comparators on the *noisy* training data, and score them on
/// the noisy test points against the true labels.
///
///  * "density (with error adjustment)" — DensityBasedClassifier trained
///    with the recorded ψ table;
///  * "density (no error adjustment)"  — the same algorithm with all
///    errors assumed zero (§4 comparator (2));
///  * "nn"                             — 1-NN on the noisy values.
struct ClassificationExperimentConfig {
  /// Error level f (average injected error in units of each dimension's σ).
  double f = 1.0;
  /// Micro-cluster budget q.
  size_t num_clusters = 140;
  /// Accuracy threshold `a` of the roll-up.
  double accuracy_threshold = 1.0;
  /// Fraction of rows held out for testing.
  double test_fraction = 0.25;
  /// Cap on scored test rows (0 = score the whole test split). Timing and
  /// accuracy both use the capped set.
  size_t max_test_examples = 500;
  /// Seed driving the perturbation and the split.
  uint64_t seed = 99;
  /// Number of independent runs (fresh perturbation + split per run) whose
  /// accuracies and timings are averaged. The paper's datasets are large
  /// enough that one run suffices; with the smaller bundled generators,
  /// averaging reduces the run-to-run noise below the curve gaps being
  /// measured.
  size_t repeats = 1;
  /// Worker width for the test-set prediction pass of every comparator
  /// (0 = serial). Accuracies are bit-identical at any width; the
  /// per-example testing time (Figs. 9-10) is wall-clock over the
  /// parallel pass, so widths > 1 report the *speeded-up* time.
  size_t threads = 0;
  /// Optional overrides for the density classifier (threshold and q above
  /// win over the copies inside this struct).
  DensityBasedClassifier::Options density_options;
};

struct ClassificationExperimentResult {
  double accuracy_error_adjusted = 0.0;
  double accuracy_no_adjust = 0.0;
  double accuracy_nn = 0.0;
  /// Wall-clock training time of the error-adjusted density classifier,
  /// per training example (Figs. 8 and 11 report exactly this).
  double train_seconds_per_example = 0.0;
  /// Wall-clock prediction time of the error-adjusted density classifier,
  /// per scored test example (Figs. 9 and 10).
  double test_seconds_per_example = 0.0;
  size_t num_train = 0;
  size_t num_test = 0;
};

/// Runs the full protocol once. `clean` must be labeled with >= 2 classes.
Result<ClassificationExperimentResult> RunClassificationExperiment(
    const Dataset& clean, const ClassificationExperimentConfig& config);

}  // namespace udm

#endif  // UDM_CLASSIFY_EXPERIMENT_H_
