#ifndef UDM_CLASSIFY_CLASSIFIER_H_
#define UDM_CLASSIFY_CLASSIFIER_H_

#include <span>
#include <string>

#include "common/result.h"

namespace udm {

/// Common interface of the classifiers compared in the paper's §4: the
/// error-adjusted density classifier, its non-adjusted twin, and the
/// nearest-neighbor baseline. Points are full-dimensional feature vectors.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Predicted class label for `x` (x.size() == feature dimensionality).
  virtual Result<int> Predict(std::span<const double> x) const = 0;

  /// Number of classes the model was trained with.
  virtual size_t NumClasses() const = 0;

  /// Short display name for experiment reports.
  virtual std::string Name() const = 0;
};

}  // namespace udm

#endif  // UDM_CLASSIFY_CLASSIFIER_H_
