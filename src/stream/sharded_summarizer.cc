#include "stream/sharded_summarizer.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <utility>

#include "common/parallel.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace udm {

namespace {

/// Shard lifecycle counters, process-wide. Resolved once; updates are
/// relaxed atomic adds (safe from a parallel drain).
struct ShardMetrics {
  obs::Counter& records_routed;
  obs::Counter& crashes;
  obs::Counter& recoveries;
  obs::Counter& checkpoints;
  obs::Counter& merges_skipped;
  obs::Gauge& replay_remaining;
  obs::Gauge& degraded;
  obs::Histogram& merge_seconds;

  static ShardMetrics& Get() {
    static ShardMetrics* metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return new ShardMetrics{
          registry.GetCounter("shard.records_routed"),
          registry.GetCounter("shard.crashes"),
          registry.GetCounter("shard.recoveries"),
          registry.GetCounter("shard.checkpoints"),
          registry.GetCounter("shard.merges_skipped"),
          registry.GetGauge("shard.replay_remaining"),
          registry.GetGauge("shard.degraded"),
          registry.GetHistogram("shard.merge.seconds"),
      };
    }();
    return *metrics;
  }
};

StopCause StopCauseFromStatus(const Status& boundary) {
  return boundary.code() == StatusCode::kDeadlineExceeded ? StopCause::kDeadline
                                                          : StopCause::kBudget;
}

/// kDeadline outranks kBudget outranks kCompleted when several shards stop
/// for different reasons in one call.
StopCause WorseStopCause(StopCause a, StopCause b) {
  if (a == StopCause::kDeadline || b == StopCause::kDeadline) {
    return StopCause::kDeadline;
  }
  if (a == StopCause::kBudget || b == StopCause::kBudget) {
    return StopCause::kBudget;
  }
  return StopCause::kCompleted;
}

}  // namespace

const char* ShardHealthToString(ShardHealth health) {
  switch (health) {
    case ShardHealth::kHealthy:
      return "healthy";
    case ShardHealth::kDegraded:
      return "degraded";
    case ShardHealth::kRecovering:
      return "recovering";
  }
  return "unknown";
}

Result<ShardedSummarizer> ShardedSummarizer::Create(
    size_t num_dims, const ShardedSummarizerOptions& options) {
  if (num_dims == 0) {
    return Status::InvalidArgument("ShardedSummarizer: num_dims == 0");
  }
  if (options.num_shards == 0) {
    return Status::InvalidArgument("ShardedSummarizer: num_shards == 0");
  }
  if (options.shard_options.num_clusters == 0) {
    return Status::InvalidArgument(
        "ShardedSummarizer: shard_options.num_clusters == 0");
  }

  ShardedSummarizer sharded(num_dims, options);
  sharded.shards_.resize(options.num_shards);
  for (size_t i = 0; i < options.num_shards; ++i) {
    Shard& shard = sharded.shards_[i];
    auto summarizer = StreamSummarizer::Create(num_dims, options.shard_options);
    if (!summarizer.ok()) {
      return summarizer.status().WithContext("ShardedSummarizer shard " +
                                             std::to_string(i));
    }
    shard.summarizer.emplace(std::move(summarizer).value());
    if (!options.checkpoint_dir.empty()) {
      CheckpointOptions ck;
      ck.directory = options.checkpoint_dir + "/shard-" + std::to_string(i);
      ck.retry = options.retry;
      ck.io_faults = options.io_faults;
      auto manager = CheckpointManager::Create(ck);
      if (!manager.ok()) {
        return manager.status().WithContext("ShardedSummarizer shard " +
                                            std::to_string(i) + " checkpoints");
      }
      shard.checkpoints.emplace(std::move(manager).value());
    }
  }
  return sharded;
}

size_t ShardedSummarizer::ShardFor(const RecordView& record) const {
  // FNV-1a over the value bit patterns and the timestamp. Bit patterns, not
  // rounded values: routing must be a pure function of the record so a
  // replayed stream lands on the same shards.
  uint64_t h = 14695981039346656037ULL ^ options_.hash_seed;
  const auto mix = [&h](uint64_t bits) {
    for (int b = 0; b < 8; ++b) {
      h ^= (bits >> (8 * b)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  for (double v : record.values) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    mix(bits);
  }
  mix(record.timestamp);
  return static_cast<size_t>(h % shards_.size());
}

bool ShardedSummarizer::CrashPointFired(ShardCrashSite site) {
  return options_.io_faults != nullptr &&
         options_.io_faults->ConsumeCrashAt(static_cast<int>(site));
}

void ShardedSummarizer::Quarantine(Shard& shard, Status cause) {
  // The in-memory summarizer dies with the "process"; everything since the
  // last durable checkpoint exists only in the replay log now.
  shard.summarizer.reset();
  shard.absorbed = shard.checkpoints ? shard.checkpointed : shard.log_base;
  shard.health = ShardHealth::kDegraded;
  shard.last_error = std::move(cause);
  ++shard.crashes;
  ShardMetrics::Get().crashes.Increment();
}

Result<BatchIngestResult> ShardedSummarizer::DrainShard(Shard& shard,
                                                        ExecContext& ctx) {
  BatchIngestResult out;
  if (!shard.summarizer || shard.absorbed == shard.routed) return out;

  const size_t offset = static_cast<size_t>(shard.absorbed - shard.log_base);
  const size_t backlog = static_cast<size_t>(shard.routed - shard.absorbed);
  std::vector<RecordView> views;
  views.reserve(backlog);
  for (size_t i = 0; i < backlog; ++i) {
    const StreamRecord& r = shard.log[offset + i];
    views.push_back(RecordView{r.values, r.psi, r.timestamp});
  }

  // The summarizer's seen-counter tells us how far the cursor moved even
  // when IngestBatch errors out mid-batch (a cancellation after partial
  // progress, or a kStrict rejection): every consumed record is validated
  // exactly once, and a rejected record is counted but not consumed.
  const uint64_t seen_before = shard.summarizer->ingest_stats().records_seen();
  auto result = shard.summarizer->IngestBatch(views, ctx);
  const uint64_t seen_delta =
      shard.summarizer->ingest_stats().records_seen() - seen_before;
  if (!result.ok()) {
    const uint64_t rejected =
        result.status().code() == StatusCode::kInvalidArgument ? 1 : 0;
    shard.absorbed += seen_delta - std::min<uint64_t>(rejected, seen_delta);
    return result.status();
  }
  shard.absorbed += result->consumed;
  return result;
}

Status ShardedSummarizer::MaybeCheckpoint(Shard& shard, bool force) {
  if (!shard.checkpoints || !shard.summarizer) return Status::OK();
  if (!force && (options_.checkpoint_every == 0 ||
                 shard.absorbed - shard.checkpointed <
                     options_.checkpoint_every)) {
    return Status::OK();
  }
  if (CrashPointFired(ShardCrashSite::kBeforeCheckpoint)) {
    Status cause = Status::Internal("injected crash: before checkpoint");
    Quarantine(shard, cause);
    return cause;
  }
  Status saved = shard.checkpoints->Save(*shard.summarizer, shard.absorbed);
  if (!saved.ok()) {
    // A save that failed past its retries (or committed a torn generation)
    // leaves durability behind the promise checkpoint_every makes;
    // quarantine and let recovery re-establish a known-good state.
    Status cause = saved.WithContext("shard checkpoint save");
    Quarantine(shard, cause);
    return cause;
  }
  shard.checkpointed = shard.absorbed;
  ShardMetrics::Get().checkpoints.Increment();
  while (shard.log_base < shard.checkpointed && !shard.log.empty()) {
    shard.log.pop_front();
    ++shard.log_base;
  }
  if (CrashPointFired(ShardCrashSite::kAfterCheckpoint)) {
    Quarantine(shard, Status::Internal("injected crash: after checkpoint"));
  }
  return Status::OK();
}

Result<ShardedIngestResult> ShardedSummarizer::IngestBatch(
    std::span<const RecordView> records, ExecContext& ctx) {
  UDM_RETURN_IF_ERROR(ctx.Check());
  obs::TraceIdScope trace_scope(ctx.trace_id());
  UDM_TRACE_SPAN("shard.ingest_batch");
  ShardMetrics& metrics = ShardMetrics::Get();

  ShardedIngestResult out;
  // Route a prefix into the shard logs. Copies are the price of the replay
  // guarantee: views die with this call, the log must survive a crash.
  for (const RecordView& r : records) {
    Shard& shard = shards_[ShardFor(r)];
    if (shard.log.size() >= options_.max_replay_buffer) {
      out.stop_cause = StopCause::kBudget;
      break;
    }
    shard.log.push_back(StreamRecord{
        std::vector<double>(r.values.begin(), r.values.end()),
        std::vector<double>(r.psi.begin(), r.psi.end()), r.timestamp});
    ++shard.routed;
    ++out.consumed;
  }
  metrics.records_routed.Increment(out.consumed);

  // Drain every healthy shard's backlog. Shard state is disjoint, so the
  // drains are independent; the shared ctx keeps one deadline over all.
  std::vector<StopCause> causes(shards_.size(), StopCause::kCompleted);
  const auto process = [&](size_t begin, size_t end, size_t) -> Status {
    // Pool workers re-bind to the batch's request so per-shard drain spans
    // stitch to the same trace id as shard.ingest_batch.
    obs::TraceIdScope drain_scope(ctx.trace_id());
    UDM_TRACE_SPAN("shard.drain");
    for (size_t i = begin; i < end; ++i) {
      Shard& shard = shards_[i];
      if (shard.health != ShardHealth::kHealthy) continue;
      if (CrashPointFired(ShardCrashSite::kBeforeIngest)) {
        Quarantine(shard, Status::Internal("injected crash: before ingest"));
        continue;
      }
      auto drained = DrainShard(shard, ctx);
      if (!drained.ok()) {
        return drained.status().WithContext("shard " + std::to_string(i));
      }
      if (CrashPointFired(ShardCrashSite::kAfterIngest)) {
        Quarantine(shard, Status::Internal("injected crash: after ingest"));
        continue;
      }
      causes[i] = drained->stop_cause;
      // Quarantines on failure; the batch itself still succeeds — the
      // damage is shard-local and reported via shards_degraded.
      (void)MaybeCheckpoint(shard, /*force=*/false);
    }
    return Status::OK();
  };

  const bool serial = options_.threads <= 1 || options_.io_faults != nullptr;
  if (serial) {
    Status st = process(0, shards_.size(), 0);
    if (!st.ok()) {
      PublishGauges();
      return st;
    }
  } else {
    ParallelForOptions popts;
    popts.threads = options_.threads;
    popts.chunk_size = 1;
    ParallelForResult result = ParallelFor(shards_.size(), popts, process);
    if (!result.ok()) {
      PublishGauges();
      return result.status;
    }
  }

  for (StopCause cause : causes) {
    out.stop_cause = WorseStopCause(out.stop_cause, cause);
  }
  out.shards_degraded = num_degraded();
  PublishGauges();
  return out;
}

Status ShardedSummarizer::RecoverShards(ExecContext& ctx) {
  UDM_TRACE_SPAN("shard.recover");
  ShardMetrics& metrics = ShardMetrics::Get();
  Status first_error;
  for (size_t i = 0; i < shards_.size(); ++i) {
    Shard& shard = shards_[i];
    if (shard.health == ShardHealth::kHealthy) continue;
    const auto record_error = [&](const Status& st) {
      shard.last_error = st;
      if (first_error.ok()) first_error = st;
    };

    shard.health = ShardHealth::kRecovering;
    if (!shard.summarizer) {
      if (shard.checkpoints) {
        auto restored = shard.checkpoints->RestoreLatest();
        if (restored.ok()) {
          if (restored->cursor < shard.log_base ||
              restored->cursor > shard.routed) {
            shard.health = ShardHealth::kDegraded;
            record_error(Status::Internal(
                "shard " + std::to_string(i) + ": checkpoint cursor " +
                std::to_string(restored->cursor) +
                " outside replay log window [" +
                std::to_string(shard.log_base) + ", " +
                std::to_string(shard.routed) + "]"));
            continue;
          }
          shard.absorbed = restored->cursor;
          shard.checkpointed = restored->cursor;
          shard.summarizer.emplace(std::move(restored->summarizer));
        } else if (restored.status().code() == StatusCode::kNotFound) {
          // Crashed before the first save ever landed: the log still holds
          // the shard's whole history (trims only follow saves).
          auto fresh = StreamSummarizer::Create(num_dims_,
                                                options_.shard_options);
          if (!fresh.ok()) {
            shard.health = ShardHealth::kDegraded;
            record_error(fresh.status());
            continue;
          }
          shard.absorbed = shard.log_base;
          shard.checkpointed = shard.log_base;
          shard.summarizer.emplace(std::move(fresh).value());
        } else {
          shard.health = ShardHealth::kDegraded;
          record_error(restored.status().WithContext(
              "shard " + std::to_string(i) + " restore"));
          continue;
        }
      } else {
        // No durable store: recovery is a full replay of the (untrimmed)
        // log through a fresh summarizer.
        auto fresh =
            StreamSummarizer::Create(num_dims_, options_.shard_options);
        if (!fresh.ok()) {
          shard.health = ShardHealth::kDegraded;
          record_error(fresh.status());
          continue;
        }
        shard.absorbed = shard.log_base;
        shard.summarizer.emplace(std::move(fresh).value());
      }
    }

    auto drained = DrainShard(shard, ctx);
    if (!drained.ok()) {
      // Cursor stayed consistent (DrainShard syncs it from the seen
      // counter), so the shard keeps its progress and stays kRecovering.
      record_error(drained.status().WithContext("shard " + std::to_string(i) +
                                                " replay"));
      continue;
    }
    if (shard.absorbed == shard.routed) {
      shard.health = ShardHealth::kHealthy;
      ++shard.recoveries;
      metrics.recoveries.Increment();
    }
    // else: deadline mid-replay — stays kRecovering with progress kept.
  }
  PublishGauges();
  return first_error;
}

Status ShardedSummarizer::CheckpointAll() {
  Status first_error;
  for (Shard& shard : shards_) {
    if (shard.health != ShardHealth::kHealthy) continue;
    Status saved = MaybeCheckpoint(shard, /*force=*/true);
    if (!saved.ok() && first_error.ok()) first_error = saved;
  }
  PublishGauges();
  return first_error;
}

MergeResult ShardedSummarizer::MergedSummary(ExecContext& ctx) const {
  UDM_TRACE_SPAN("shard.merge");
  Stopwatch watch;
  MergeResult out;

  std::vector<SummaryView> views;
  views.reserve(shards_.size());
  for (size_t i = 0; i < shards_.size(); ++i) {
    const Status boundary = ctx.Check();
    if (!boundary.ok()) {
      // Deadline mid-merge: flag every not-yet-visited shard instead of
      // blocking on it.
      for (size_t j = i; j < shards_.size(); ++j) {
        out.skipped_shards.push_back(j);
      }
      out.stop_cause = StopCauseFromStatus(boundary);
      break;
    }
    const Shard& shard = shards_[i];
    if (shard.health != ShardHealth::kHealthy || !shard.summarizer) {
      out.skipped_shards.push_back(i);
      continue;
    }
    views.push_back(shard.summarizer->clusters());
  }

  MicroClusterer::Options merge_options;
  merge_options.num_clusters = options_.merged_clusters != 0
                                   ? options_.merged_clusters
                                   : options_.shard_options.num_clusters;
  merge_options.distance = options_.shard_options.distance;
  auto merged = MergeSummaries(std::span<const SummaryView>(views), num_dims_,
                               merge_options);
  // Inputs are validated shard summaries over num_dims_, so the only
  // failure modes (zero dims/budget, dim mismatch) cannot occur.
  if (merged.ok()) {
    out.clusters = std::move(merged).value();
    out.shards_merged = views.size();
  }

  ShardMetrics& metrics = ShardMetrics::Get();
  metrics.merge_seconds.Record(watch.ElapsedSeconds());
  metrics.merges_skipped.Increment(out.skipped_shards.size());
  return out;
}

Result<McDensityModel> ShardedSummarizer::MergedSnapshot(
    ExecContext& ctx, const DensityEvalOptions& density) const {
  MergeResult merged = MergedSummary(ctx);
  if (merged.clusters.empty()) {
    return Status::FailedPrecondition(
        "MergedSnapshot: no healthy shard summaries to merge (" +
        std::to_string(merged.skipped_shards.size()) + " shards skipped)");
  }
  return McDensityModel::Build(merged.clusters, density);
}

void ShardedSummarizer::KillShard(size_t i) {
  if (i >= shards_.size()) return;
  Quarantine(shards_[i], Status::Internal("shard killed"));
  PublishGauges();
}

ShardStatus ShardedSummarizer::shard_status(size_t i) const {
  ShardStatus status;
  if (i >= shards_.size()) return status;
  const Shard& shard = shards_[i];
  status.health = shard.health;
  status.records_routed = shard.routed;
  status.records_absorbed = shard.absorbed;
  status.records_checkpointed = shard.checkpointed;
  status.replay_remaining = shard.routed - shard.absorbed;
  status.crashes = shard.crashes;
  status.recoveries = shard.recoveries;
  status.last_error = shard.last_error;
  return status;
}

const StreamSummarizer* ShardedSummarizer::shard_summarizer(size_t i) const {
  if (i >= shards_.size() || !shards_[i].summarizer) return nullptr;
  return &*shards_[i].summarizer;
}

size_t ShardedSummarizer::num_degraded() const {
  size_t n = 0;
  for (const Shard& shard : shards_) {
    if (shard.health != ShardHealth::kHealthy) ++n;
  }
  return n;
}

uint64_t ShardedSummarizer::total_replay_remaining() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.routed - shard.absorbed;
  return n;
}

uint64_t ShardedSummarizer::records_routed() const {
  uint64_t n = 0;
  for (const Shard& shard : shards_) n += shard.routed;
  return n;
}

IngestStats ShardedSummarizer::AggregateIngestStats() const {
  IngestStats total;
  for (const Shard& shard : shards_) {
    if (!shard.summarizer) continue;
    const IngestStats& s = shard.summarizer->ingest_stats();
    total.records_ok += s.records_ok;
    total.records_repaired += s.records_repaired;
    total.records_quarantined += s.records_quarantined;
    total.records_rejected += s.records_rejected;
    total.dimension_mismatches += s.dimension_mismatches;
    total.out_of_order_timestamps += s.out_of_order_timestamps;
    total.non_finite_values += s.non_finite_values;
    total.negative_errors += s.negative_errors;
    total.records_deferred += s.records_deferred;
    total.batch_deadline_deferrals += s.batch_deadline_deferrals;
    total.records_replayed += s.records_replayed;
  }
  return total;
}

void ShardedSummarizer::PublishGauges() const {
  ShardMetrics& metrics = ShardMetrics::Get();
  metrics.replay_remaining.Set(static_cast<double>(total_replay_remaining()));
  metrics.degraded.Set(static_cast<double>(num_degraded()));
}

}  // namespace udm
