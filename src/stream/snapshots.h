#ifndef UDM_STREAM_SNAPSHOTS_H_
#define UDM_STREAM_SNAPSHOTS_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "microcluster/microcluster.h"

namespace udm {

/// Pyramidal snapshot retention over micro-cluster summaries, in the
/// spirit of CluStream [2]: because CFT tuples are additive *and*
/// subtractive, the difference of two snapshots of the same summary is the
/// exact summary of the points that arrived between them. Storing
/// snapshots at geometrically coarsening ages lets a stream answer
/// horizon-limited density queries ("the distribution over the last h
/// ticks") with O(log T) memory.
///
/// The store assumes the paper's maintenance policy (clusterer.h):
/// clusters are only ever *appended* (during seeding) or *grown*, so
/// cluster i at an earlier time is always a subset of cluster i later —
/// exactly the precondition of MicroCluster::Subtract.
class SnapshotStore {
 public:
  struct Options {
    /// Snapshots per order (CluStream's α); higher keeps finer history.
    size_t per_order = 3;
    /// Geometric base between orders.
    uint64_t base = 2;
  };

  struct Snapshot {
    uint64_t timestamp = 0;
    std::vector<MicroCluster> clusters;
  };

  explicit SnapshotStore(const Options& options) : options_(options) {}
  SnapshotStore() : SnapshotStore(Options()) {}

  /// Records the summary state at `timestamp` (non-decreasing), then
  /// prunes to the pyramidal pattern: for order o, only the most recent
  /// `per_order` snapshots with timestamp divisible by base^o survive.
  void Record(uint64_t timestamp, std::vector<MicroCluster> clusters);

  /// The most recent snapshot taken at or before `timestamp`; null if the
  /// store has nothing that old.
  const Snapshot* FindAtOrBefore(uint64_t timestamp) const;

  /// The summary of everything that arrived strictly after the snapshot
  /// nearest to (now − horizon): per-cluster subtraction of that snapshot
  /// from `current`. Clusters created after the snapshot pass through
  /// whole. The subtraction is exact, not approximate; the approximation
  /// is only in how close the retained snapshot is to the requested cut.
  Result<std::vector<MicroCluster>> SummarySince(
      std::span<const MicroCluster> current, uint64_t cut_timestamp) const;

  /// Number of retained snapshots.
  size_t size() const { return snapshots_.size(); }

  /// All retained snapshot timestamps, oldest first.
  std::vector<uint64_t> Timestamps() const;

 private:
  Options options_;
  std::vector<Snapshot> snapshots_;  // sorted by timestamp, oldest first
};

}  // namespace udm

#endif  // UDM_STREAM_SNAPSHOTS_H_
