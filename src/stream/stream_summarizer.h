#ifndef UDM_STREAM_STREAM_SUMMARIZER_H_
#define UDM_STREAM_STREAM_SUMMARIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/result.h"
#include "kde/error_kde.h"
#include "microcluster/clusterer.h"
#include "microcluster/mc_density.h"

namespace udm {

/// Streaming front-end for the error-based micro-cluster summary.
///
/// Definition 1 of the paper is phrased over a *stream*: "records X_1..X_k
/// arriving at time stamps T_1..T_k", and §2.1 notes the method "can be
/// generalized to very large data sets and data streams". This class is
/// that generalization: points arrive one at a time with timestamps, the
/// fixed-budget summary absorbs each in O(q·d), and a density model over
/// any subspace can be snapshotted at any moment without touching history.
class StreamSummarizer {
 public:
  struct Options {
    /// Micro-cluster budget q, sized to main memory (§2.1).
    size_t num_clusters = 140;
    AssignmentDistance distance = AssignmentDistance::kErrorAdjusted;
    /// Require non-decreasing timestamps (rejects out-of-order arrivals
    /// with FailedPrecondition when true).
    bool enforce_monotonic_time = true;
  };

  /// Per-cluster arrival-time statistics (kept outside the additive CF
  /// tuple, in CluStream's spirit of temporal recency tracking).
  struct TimeStats {
    uint64_t first_timestamp = 0;
    uint64_t last_timestamp = 0;
  };

  static Result<StreamSummarizer> Create(size_t num_dims,
                                         const Options& options);
  static Result<StreamSummarizer> Create(size_t num_dims) {
    return Create(num_dims, Options());
  }

  /// Ingests one record with its error vector and timestamp.
  Status Ingest(std::span<const double> values, std::span<const double> psi,
                uint64_t timestamp);

  /// Records processed so far.
  uint64_t num_points() const { return clusterer_.num_points(); }

  /// Latest timestamp seen (0 before any ingest).
  uint64_t last_timestamp() const { return last_timestamp_; }

  /// Current clusters (live view; further ingests mutate it).
  std::span<const MicroCluster> clusters() const {
    return clusterer_.clusters();
  }

  /// Arrival-time statistics parallel to clusters().
  std::span<const TimeStats> time_stats() const { return time_stats_; }

  /// Builds a density model over the current summary. O(q·d); the stream
  /// can keep running afterwards.
  Result<McDensityModel> SnapshotDensity(
      const ErrorDensityOptions& options = {}) const;

 private:
  StreamSummarizer(MicroClusterer clusterer, Options options)
      : clusterer_(std::move(clusterer)), options_(options) {}

  MicroClusterer clusterer_;
  Options options_;
  std::vector<TimeStats> time_stats_;
  uint64_t last_timestamp_ = 0;
};

}  // namespace udm

#endif  // UDM_STREAM_STREAM_SUMMARIZER_H_
