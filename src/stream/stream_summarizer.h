#ifndef UDM_STREAM_STREAM_SUMMARIZER_H_
#define UDM_STREAM_STREAM_SUMMARIZER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "kde/error_kde.h"
#include "microcluster/clusterer.h"
#include "microcluster/mc_density.h"

namespace udm {

/// What Ingest does when a record is malformed. Real uncertain-data streams
/// arrive dirty (sensor dropouts, NaN readings, clock skew); the policy
/// decides whether the *system* or the *caller* owns the degradation.
enum class FaultPolicy {
  /// Reject the record with a non-OK Status (the caller handles it). This
  /// is the historical behavior and the default.
  kStrict,
  /// Repair in place and ingest: NaN/Inf features are imputed from
  /// per-dimension running means, negative or non-finite ψ entries are
  /// clamped to 0, out-of-order timestamps are clamped forward to the
  /// stream's high-water mark, and wrong-width records are truncated or
  /// mean-padded to the summarizer's dimensionality.
  kRepair,
  /// Skip the record entirely and count it; Ingest still returns OK so a
  /// dirty stream flows end-to-end without caller-side error handling.
  kQuarantine,
};

/// Per-category counters for everything the validator has seen. Exposed
/// for observability: a monitoring loop can alarm on a counter's rate
/// without ever seeing a failed Ingest. A record increments exactly one
/// fault category (the first one detected, in the order below) per call.
struct IngestStats {
  /// Records accepted untouched.
  uint64_t records_ok = 0;
  /// Records accepted after kRepair fixed at least one field.
  uint64_t records_repaired = 0;
  /// Records skipped by kQuarantine.
  uint64_t records_quarantined = 0;
  /// Records rejected with an error by kStrict.
  uint64_t records_rejected = 0;

  /// Fault categories, disjoint per record, detection order as listed.
  uint64_t dimension_mismatches = 0;
  uint64_t out_of_order_timestamps = 0;
  uint64_t non_finite_values = 0;
  uint64_t negative_errors = 0;

  /// Backpressure counters (IngestBatch only). Deferred records were never
  /// validated, so they appear in no category above and not in
  /// records_seen(); the caller is expected to re-offer them.
  ///
  /// `records_deferred` is the number of deferred records still
  /// *outstanding*: IngestBatch decrements it as re-offered records are
  /// consumed (the contract is that a caller replays the deferred tail
  /// before offering new records), so it reads as a live replay backlog
  /// — 0 means every deferral has been made good.
  uint64_t records_deferred = 0;
  /// Batches whose deadline/budget expired before every record was
  /// consumed (each such batch deferred >= 1 record).
  uint64_t batch_deadline_deferrals = 0;
  /// Monotonic total of deferred records later consumed on a re-offer
  /// (each successful replay moves one record from records_deferred here).
  uint64_t records_replayed = 0;

  /// Total Ingest calls observed.
  uint64_t records_seen() const {
    return records_ok + records_repaired + records_quarantined +
           records_rejected;
  }
  /// Total records that tripped any fault category.
  uint64_t faults() const {
    return dimension_mismatches + out_of_order_timestamps +
           non_finite_values + negative_errors;
  }
};

/// A borrowed view of one stream record, for batch ingestion. The spans
/// must outlive the IngestBatch call; nothing is copied until a record is
/// actually absorbed.
struct RecordView {
  std::span<const double> values;
  std::span<const double> psi;
  uint64_t timestamp = 0;
};

/// Outcome of IngestBatch: how many leading records were consumed and why
/// the batch stopped early (if it did).
struct BatchIngestResult {
  size_t consumed = 0;
  StopCause stop_cause = StopCause::kCompleted;
};

/// Streaming front-end for the error-based micro-cluster summary.
///
/// Definition 1 of the paper is phrased over a *stream*: "records X_1..X_k
/// arriving at time stamps T_1..T_k", and §2.1 notes the method "can be
/// generalized to very large data sets and data streams". This class is
/// that generalization: points arrive one at a time with timestamps, the
/// fixed-budget summary absorbs each in O(q·d), and a density model over
/// any subspace can be snapshotted at any moment without touching history.
///
/// Long-running ingestion is fault-tolerant on two axes: a FaultPolicy
/// governs malformed records (see above), and the complete mutable state
/// can be exported/restored via ExportState/FromState — the hook used by
/// robustness::CheckpointManager to survive process crashes (DESIGN.md
/// "Failure model & recovery").
class StreamSummarizer {
 public:
  struct Options {
    /// Micro-cluster budget q, sized to main memory (§2.1).
    size_t num_clusters = 140;
    AssignmentDistance distance = AssignmentDistance::kErrorAdjusted;
    /// Require non-decreasing timestamps (out-of-order arrivals become
    /// faults handled per `policy` when true).
    bool enforce_monotonic_time = true;
    /// What to do with malformed records.
    FaultPolicy policy = FaultPolicy::kStrict;
  };

  /// Per-cluster arrival-time statistics (kept outside the additive CF
  /// tuple, in CluStream's spirit of temporal recency tracking).
  /// `first_timestamp`/`last_timestamp` are the min/max arrival times of
  /// the cluster's members, which stays meaningful when
  /// enforce_monotonic_time is off and arrivals interleave.
  struct TimeStats {
    uint64_t first_timestamp = 0;
    uint64_t last_timestamp = 0;
  };

  /// The complete mutable state: everything needed to reconstruct a
  /// summarizer that behaves identically to the original from the next
  /// Ingest call onward. Produced by ExportState, consumed by FromState;
  /// serialized by robustness/checkpoint.h.
  struct State {
    size_t num_dims = 0;
    Options options;
    std::vector<MicroCluster> clusters;
    std::vector<TimeStats> time_stats;
    uint64_t last_timestamp = 0;
    IngestStats stats;
    /// Per-dimension running sums/counts of finite ingested values — the
    /// imputation state behind FaultPolicy::kRepair.
    std::vector<double> repair_sums;
    std::vector<uint64_t> repair_counts;
  };

  static Result<StreamSummarizer> Create(size_t num_dims,
                                         const Options& options);
  static Result<StreamSummarizer> Create(size_t num_dims) {
    return Create(num_dims, Options());
  }

  /// Reconstructs a summarizer from exported state. Validates shape
  /// consistency (cluster dims, time-stats length, repair-state length).
  static Result<StreamSummarizer> FromState(State state);

  /// Deep-copies the current state (the stream can keep running).
  State ExportState() const;

  /// Ingests one record with its error vector and timestamp. Under
  /// kRepair/kQuarantine this only returns non-OK for conditions no policy
  /// can absorb (nothing today; reserved for resource exhaustion).
  Status Ingest(std::span<const double> values, std::span<const double> psi,
                uint64_t timestamp);

  /// Ingests a prefix of `records` under the context's deadline/budget,
  /// checking before each record (bytes are charged per record). Stops at
  /// the first violation: a cancellation — or any violation before the
  /// first record lands — is an error and, if nothing was consumed, leaves
  /// the summarizer untouched; after partial progress a deadline/budget hit
  /// returns OK with `consumed < records.size()` and `stop_cause` set, and
  /// the backpressure counters in ingest_stats() are bumped (the caller
  /// re-offers the tail). A kStrict validation error propagates as-is.
  Result<BatchIngestResult> IngestBatch(std::span<const RecordView> records,
                                        ExecContext& ctx);

  /// Records absorbed into the summary so far (excludes quarantined and
  /// rejected records).
  uint64_t num_points() const { return clusterer_.num_points(); }

  /// Validation counters across all Ingest calls.
  const IngestStats& ingest_stats() const { return stats_; }

  /// Latest timestamp seen (0 before any ingest).
  uint64_t last_timestamp() const { return last_timestamp_; }

  size_t num_dims() const { return clusterer_.num_dims(); }

  const Options& options() const { return options_; }

  /// Current clusters (live view; further ingests mutate it).
  std::span<const MicroCluster> clusters() const {
    return clusterer_.clusters();
  }

  /// Arrival-time statistics parallel to clusters().
  std::span<const TimeStats> time_stats() const { return time_stats_; }

  /// Builds a density model over the current summary. O(q·d); the stream
  /// can keep running afterwards.
  Result<McDensityModel> SnapshotDensity(
      const DensityEvalOptions& options = {}) const;

 private:
  StreamSummarizer(MicroClusterer clusterer, Options options)
      : clusterer_(std::move(clusterer)),
        options_(options),
        repair_sums_(clusterer_.num_dims(), 0.0),
        repair_counts_(clusterer_.num_dims(), 0) {}

  /// Absorbs a validated (possibly repaired) record.
  void Absorb(std::span<const double> values, std::span<const double> psi,
              uint64_t timestamp);

  MicroClusterer clusterer_;
  Options options_;
  std::vector<TimeStats> time_stats_;
  uint64_t last_timestamp_ = 0;
  IngestStats stats_;
  std::vector<double> repair_sums_;
  std::vector<uint64_t> repair_counts_;
};

}  // namespace udm

#endif  // UDM_STREAM_STREAM_SUMMARIZER_H_
