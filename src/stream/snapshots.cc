#include "stream/snapshots.h"

#include <algorithm>
#include <set>

namespace udm {

void SnapshotStore::Record(uint64_t timestamp,
                           std::vector<MicroCluster> clusters) {
  UDM_CHECK(snapshots_.empty() || timestamp >= snapshots_.back().timestamp)
      << "SnapshotStore::Record: timestamps must be non-decreasing";
  snapshots_.push_back(Snapshot{timestamp, std::move(clusters)});

  // Pyramidal pruning: a snapshot survives if it is among the most recent
  // `per_order` of *some* order o (timestamp divisible by base^o but not
  // base^(o+1), following CluStream's frame classification).
  const uint64_t base = std::max<uint64_t>(2, options_.base);
  std::set<size_t> keep;
  // Count per order from the most recent snapshot backwards.
  std::vector<size_t> kept_per_order(64, 0);
  for (size_t idx = snapshots_.size(); idx-- > 0;) {
    const uint64_t t = snapshots_[idx].timestamp;
    // Order of t: largest o with base^o dividing t (t = 0 -> top order).
    size_t order = 0;
    if (t == 0) {
      order = 63;
    } else {
      uint64_t value = t;
      while (value % base == 0 && order < 63) {
        value /= base;
        ++order;
      }
    }
    if (kept_per_order[order] < options_.per_order) {
      ++kept_per_order[order];
      keep.insert(idx);
    }
  }
  std::vector<Snapshot> pruned;
  pruned.reserve(keep.size());
  for (size_t idx : keep) pruned.push_back(std::move(snapshots_[idx]));
  snapshots_ = std::move(pruned);
}

const SnapshotStore::Snapshot* SnapshotStore::FindAtOrBefore(
    uint64_t timestamp) const {
  const Snapshot* best = nullptr;
  for (const Snapshot& snapshot : snapshots_) {
    if (snapshot.timestamp <= timestamp) best = &snapshot;
  }
  return best;
}

Result<std::vector<MicroCluster>> SnapshotStore::SummarySince(
    std::span<const MicroCluster> current, uint64_t cut_timestamp) const {
  const Snapshot* cut = FindAtOrBefore(cut_timestamp);
  std::vector<MicroCluster> out;
  out.reserve(current.size());
  if (cut == nullptr) {
    // No snapshot that old: the whole summary is "since then".
    out.assign(current.begin(), current.end());
    return out;
  }
  if (cut->clusters.size() > current.size()) {
    return Status::InvalidArgument(
        "SummarySince: snapshot has more clusters than the current summary "
        "(not from the same stream?)");
  }
  for (size_t c = 0; c < current.size(); ++c) {
    if (c < cut->clusters.size()) {
      UDM_ASSIGN_OR_RETURN(MicroCluster delta,
                           current[c].Subtract(cut->clusters[c]));
      out.push_back(std::move(delta));
    } else {
      out.push_back(current[c]);  // cluster born after the snapshot
    }
  }
  return out;
}

std::vector<uint64_t> SnapshotStore::Timestamps() const {
  std::vector<uint64_t> out;
  out.reserve(snapshots_.size());
  for (const Snapshot& snapshot : snapshots_) out.push_back(snapshot.timestamp);
  return out;
}

}  // namespace udm
