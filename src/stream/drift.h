#ifndef UDM_STREAM_DRIFT_H_
#define UDM_STREAM_DRIFT_H_

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "microcluster/mc_density.h"

namespace udm {

/// Distribution-drift scoring between two error-adjusted density models —
/// the stream-monitoring application of the paper's thesis that "the
/// density distribution of the data set is a surrogate for the actual
/// points in it" (§3). Combined with SnapshotStore, this answers "has the
/// stream's distribution changed over the last h ticks?" from summaries
/// alone.
///
/// The score is a symmetrized mean log-density ratio over probe points
/// drawn from both models' mass (their cluster centroids, population-
/// weighted): 0 for identical models, growing as the distributions
/// diverge. It is a Jeffreys-divergence estimate under the probe measure —
/// not a calibrated statistical test, but a monotone, cheap drift signal.
struct DriftResult {
  /// Symmetrized mean |log f_a(x) − log f_b(x)| over the probes.
  double score = 0.0;
  /// Probes where model A is denser / model B is denser.
  size_t probes_favoring_a = 0;
  size_t probes_favoring_b = 0;
};

/// Scores drift between two models of the same dimensionality. Probe
/// points are the union of both models' cluster centroids. Requires both
/// models non-empty.
Result<DriftResult> MeasureDrift(const McDensityModel& a,
                                 const McDensityModel& b);

}  // namespace udm

#endif  // UDM_STREAM_DRIFT_H_
