#include "stream/stream_summarizer.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace udm {

namespace {

/// Ingest outcome counters, mirrored from IngestStats so a run report can
/// include them without reaching into summarizer instances. Resolved once
/// per process; updates are relaxed atomic adds.
struct StreamMetrics {
  obs::Counter& records_ok;
  obs::Counter& records_repaired;
  obs::Counter& records_quarantined;
  obs::Counter& records_rejected;
  obs::Counter& records_deferred;
  obs::Counter& records_replayed;
  obs::Counter& batch_deferrals;
  obs::Gauge& microclusters;
  obs::Histogram& ingest_seconds;

  static StreamMetrics& Get() {
    static StreamMetrics* metrics = [] {
      auto& registry = obs::MetricsRegistry::Global();
      return new StreamMetrics{
          registry.GetCounter("stream.records_ok"),
          registry.GetCounter("stream.records_repaired"),
          registry.GetCounter("stream.records_quarantined"),
          registry.GetCounter("stream.records_rejected"),
          registry.GetCounter("stream.records_deferred"),
          registry.GetCounter("stream.records_replayed"),
          registry.GetCounter("stream.batch_deferrals"),
          registry.GetGauge("stream.microclusters"),
          registry.GetHistogram("stream.ingest.seconds")};
    }();
    return *metrics;
  }
};

bool AllFinite(std::span<const double> xs) {
  for (double x : xs) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

bool AnyNegative(std::span<const double> xs) {
  for (double x : xs) {
    if (x < 0.0) return true;
  }
  return false;
}

}  // namespace

Result<StreamSummarizer> StreamSummarizer::Create(size_t num_dims,
                                                  const Options& options) {
  MicroClusterer::Options mc_options;
  mc_options.num_clusters = options.num_clusters;
  mc_options.distance = options.distance;
  UDM_ASSIGN_OR_RETURN(MicroClusterer clusterer,
                       MicroClusterer::Create(num_dims, mc_options));
  return StreamSummarizer(std::move(clusterer), options);
}

Result<StreamSummarizer> StreamSummarizer::FromState(State state) {
  MicroClusterer::Options mc_options;
  mc_options.num_clusters = state.options.num_clusters;
  mc_options.distance = state.options.distance;
  UDM_ASSIGN_OR_RETURN(
      MicroClusterer clusterer,
      MicroClusterer::FromClusters(state.num_dims, mc_options,
                                   std::move(state.clusters)));
  if (state.time_stats.size() != clusterer.clusters().size()) {
    return Status::InvalidArgument(
        "StreamSummarizer::FromState: time_stats length " +
        std::to_string(state.time_stats.size()) + " != cluster count " +
        std::to_string(clusterer.clusters().size()));
  }
  if (state.repair_sums.size() != state.num_dims ||
      state.repair_counts.size() != state.num_dims) {
    return Status::InvalidArgument(
        "StreamSummarizer::FromState: repair state length mismatch");
  }
  const uint64_t absorbed =
      state.stats.records_ok + state.stats.records_repaired;
  if (absorbed != clusterer.num_points()) {
    return Status::InvalidArgument(
        "StreamSummarizer::FromState: stats say " + std::to_string(absorbed) +
        " records absorbed but clusters hold " +
        std::to_string(clusterer.num_points()));
  }
  StreamSummarizer out(std::move(clusterer), state.options);
  out.time_stats_ = std::move(state.time_stats);
  out.last_timestamp_ = state.last_timestamp;
  out.stats_ = state.stats;
  out.repair_sums_ = std::move(state.repair_sums);
  out.repair_counts_ = std::move(state.repair_counts);
  return out;
}

StreamSummarizer::State StreamSummarizer::ExportState() const {
  State state;
  state.num_dims = clusterer_.num_dims();
  state.options = options_;
  state.clusters.assign(clusterer_.clusters().begin(),
                        clusterer_.clusters().end());
  state.time_stats = time_stats_;
  state.last_timestamp = last_timestamp_;
  state.stats = stats_;
  state.repair_sums = repair_sums_;
  state.repair_counts = repair_counts_;
  return state;
}

void StreamSummarizer::Absorb(std::span<const double> values,
                              std::span<const double> psi,
                              uint64_t timestamp) {
  const size_t cluster = clusterer_.Add(values, psi);
  if (cluster >= time_stats_.size()) {
    time_stats_.resize(cluster + 1);
    time_stats_[cluster].first_timestamp = timestamp;
    time_stats_[cluster].last_timestamp = timestamp;
  } else {
    TimeStats& ts = time_stats_[cluster];
    ts.first_timestamp = std::min(ts.first_timestamp, timestamp);
    ts.last_timestamp = std::max(ts.last_timestamp, timestamp);
  }
  last_timestamp_ = std::max(last_timestamp_, timestamp);
  for (size_t j = 0; j < values.size(); ++j) {
    repair_sums_[j] += values[j];
    ++repair_counts_[j];
  }
  StreamMetrics::Get().microclusters.Set(
      static_cast<double>(clusterer_.clusters().size()));
}

Status StreamSummarizer::Ingest(std::span<const double> values,
                                std::span<const double> psi,
                                uint64_t timestamp) {
  const size_t d = clusterer_.num_dims();

  // Detect the first fault in a fixed order; a record charges exactly one
  // category so counters stay reconcilable with upstream fault schedules.
  enum class Fault { kNone, kDims, kTime, kNonFinite, kNegativePsi };
  Fault fault = Fault::kNone;
  if (values.size() != d || psi.size() != d) {
    fault = Fault::kDims;
  } else if (options_.enforce_monotonic_time && timestamp < last_timestamp_) {
    fault = Fault::kTime;
  } else if (!AllFinite(values) || !AllFinite(psi)) {
    fault = Fault::kNonFinite;
  } else if (AnyNegative(psi)) {
    fault = Fault::kNegativePsi;
  }

  if (fault == Fault::kNone) {
    ++stats_.records_ok;
    StreamMetrics::Get().records_ok.Increment();
    Absorb(values, psi, timestamp);
    return Status::OK();
  }

  switch (fault) {
    case Fault::kDims:
      ++stats_.dimension_mismatches;
      break;
    case Fault::kTime:
      ++stats_.out_of_order_timestamps;
      break;
    case Fault::kNonFinite:
      ++stats_.non_finite_values;
      break;
    case Fault::kNegativePsi:
      ++stats_.negative_errors;
      break;
    case Fault::kNone:
      break;
  }

  if (options_.policy == FaultPolicy::kStrict) {
    ++stats_.records_rejected;
    StreamMetrics::Get().records_rejected.Increment();
    switch (fault) {
      case Fault::kDims:
        return Status::InvalidArgument("Ingest: dimension mismatch");
      case Fault::kTime:
        return Status::FailedPrecondition(
            "Ingest: out-of-order timestamp " + std::to_string(timestamp) +
            " after " + std::to_string(last_timestamp_));
      case Fault::kNonFinite:
        return Status::InvalidArgument(
            "Ingest: non-finite value in record or error vector");
      case Fault::kNegativePsi:
        return Status::InvalidArgument("Ingest: negative error entry");
      case Fault::kNone:
        break;
    }
    return Status::Internal("Ingest: unreachable");
  }

  if (options_.policy == FaultPolicy::kQuarantine) {
    ++stats_.records_quarantined;
    StreamMetrics::Get().records_quarantined.Increment();
    // Rate-limited so a fault storm logs once per interval, not per record.
    UDM_LOG_RATE_LIMITED(Warning, "stream.quarantine", 5.0)
        << "Ingest: quarantining malformed record at timestamp " << timestamp
        << " (" << stats_.records_quarantined << " quarantined so far)";
    return Status::OK();
  }

  // kRepair: fix every defect present (not only the charged category) and
  // absorb the mended record.
  std::vector<double> fixed_values(d);
  std::vector<double> fixed_psi(d, 0.0);
  for (size_t j = 0; j < d; ++j) {
    const double raw = j < values.size() ? values[j] :
        std::numeric_limits<double>::quiet_NaN();
    if (std::isfinite(raw)) {
      fixed_values[j] = raw;
    } else {
      // Impute from the per-dimension running mean (0 before any data).
      fixed_values[j] = repair_counts_[j] > 0
                            ? repair_sums_[j] /
                                  static_cast<double>(repair_counts_[j])
                            : 0.0;
    }
    if (j < psi.size() && std::isfinite(psi[j])) {
      fixed_psi[j] = std::max(psi[j], 0.0);
    }
  }
  uint64_t fixed_timestamp = timestamp;
  if (options_.enforce_monotonic_time && fixed_timestamp < last_timestamp_) {
    fixed_timestamp = last_timestamp_;
  }
  ++stats_.records_repaired;
  StreamMetrics::Get().records_repaired.Increment();
  UDM_LOG_RATE_LIMITED(Warning, "stream.repair", 5.0)
      << "Ingest: repaired malformed record at timestamp " << timestamp
      << " (" << stats_.records_repaired << " repaired so far)";
  Absorb(fixed_values, fixed_psi, fixed_timestamp);
  return Status::OK();
}

Result<BatchIngestResult> StreamSummarizer::IngestBatch(
    std::span<const RecordView> records, ExecContext& ctx) {
  // A cancelled or already-violated context consumes nothing and leaves the
  // summarizer bit-identical to its state before the call.
  UDM_RETURN_IF_ERROR(ctx.Check());

  UDM_TRACE_SPAN("stream.ingest_batch");
  Stopwatch batch_watch;
  BatchIngestResult out;
  for (const RecordView& record : records) {
    Status boundary = ctx.ChargeBytes(
        (record.values.size() + record.psi.size()) * sizeof(double));
    if (boundary.ok()) boundary = ctx.Check();
    if (!boundary.ok()) {
      if (boundary.code() == StatusCode::kCancelled || out.consumed == 0) {
        return boundary;
      }
      out.stop_cause = boundary.code() == StatusCode::kDeadlineExceeded
                           ? StopCause::kDeadline
                           : StopCause::kBudget;
      break;
    }
    UDM_RETURN_IF_ERROR(
        Ingest(record.values, record.psi, record.timestamp)
            .WithContext("IngestBatch record " + std::to_string(out.consumed)));
    ++out.consumed;
  }
  // Deferred tails are re-offered ahead of new records (the documented
  // contract), so the leading `overlap` records of this offer were already
  // counted deferred: consumed ones pay down the backlog as replays, and
  // unconsumed ones must not be counted a second time. records_deferred is
  // therefore a live backlog — each outstanding record appears exactly
  // once no matter how many offers it takes to land it.
  const uint64_t overlap =
      std::min<uint64_t>(records.size(), stats_.records_deferred);
  const uint64_t replayed = std::min<uint64_t>(out.consumed, overlap);
  if (replayed > 0) {
    stats_.records_deferred -= replayed;
    stats_.records_replayed += replayed;
    StreamMetrics::Get().records_replayed.Increment(replayed);
  }
  if (out.consumed < records.size()) {
    const uint64_t new_deferrals =
        (records.size() - out.consumed) - (overlap - replayed);
    stats_.records_deferred += new_deferrals;
    ++stats_.batch_deadline_deferrals;
    StreamMetrics::Get().records_deferred.Increment(new_deferrals);
    StreamMetrics::Get().batch_deferrals.Increment();
    UDM_LOG_RATE_LIMITED(Warning, "stream.backpressure", 5.0)
        << "IngestBatch: deferred " << records.size() - out.consumed
        << " of " << records.size() << " records ("
        << StopCauseToString(out.stop_cause) << ")";
  }
  StreamMetrics::Get().ingest_seconds.Record(batch_watch.ElapsedSeconds());
  return out;
}

Result<McDensityModel> StreamSummarizer::SnapshotDensity(
    const DensityEvalOptions& options) const {
  if (num_points() == 0) {
    return Status::FailedPrecondition(
        "SnapshotDensity: no points ingested yet");
  }
  return McDensityModel::Build(clusterer_.clusters(), options);
}

}  // namespace udm
