#include "stream/stream_summarizer.h"

namespace udm {

Result<StreamSummarizer> StreamSummarizer::Create(size_t num_dims,
                                                  const Options& options) {
  MicroClusterer::Options mc_options;
  mc_options.num_clusters = options.num_clusters;
  mc_options.distance = options.distance;
  UDM_ASSIGN_OR_RETURN(MicroClusterer clusterer,
                       MicroClusterer::Create(num_dims, mc_options));
  return StreamSummarizer(std::move(clusterer), options);
}

Status StreamSummarizer::Ingest(std::span<const double> values,
                                std::span<const double> psi,
                                uint64_t timestamp) {
  if (values.size() != clusterer_.num_dims() ||
      psi.size() != clusterer_.num_dims()) {
    return Status::InvalidArgument("Ingest: dimension mismatch");
  }
  if (options_.enforce_monotonic_time && num_points() > 0 &&
      timestamp < last_timestamp_) {
    return Status::FailedPrecondition(
        "Ingest: out-of-order timestamp " + std::to_string(timestamp) +
        " after " + std::to_string(last_timestamp_));
  }
  const size_t cluster = clusterer_.Add(values, psi);
  if (cluster >= time_stats_.size()) {
    time_stats_.resize(cluster + 1);
    time_stats_[cluster].first_timestamp = timestamp;
  }
  time_stats_[cluster].last_timestamp = timestamp;
  last_timestamp_ = std::max(last_timestamp_, timestamp);
  return Status::OK();
}

Result<McDensityModel> StreamSummarizer::SnapshotDensity(
    const ErrorDensityOptions& options) const {
  if (num_points() == 0) {
    return Status::FailedPrecondition(
        "SnapshotDensity: no points ingested yet");
  }
  return McDensityModel::Build(clusterer_.clusters(), options);
}

}  // namespace udm
