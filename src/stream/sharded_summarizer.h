#ifndef UDM_STREAM_SHARDED_SUMMARIZER_H_
#define UDM_STREAM_SHARDED_SUMMARIZER_H_

#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/exec_context.h"
#include "common/result.h"
#include "microcluster/merge.h"
#include "microcluster/mc_density.h"
#include "robustness/checkpoint.h"
#include "robustness/fault_injector.h"
#include "robustness/retry.h"
#include "stream/stream_summarizer.h"

namespace udm {

/// Scale-out stream summarization: hash-partitioned ingestion across K
/// independent StreamSummarizer shards with per-shard crash recovery.
///
/// Definition 1's CFT tuples are additive (Lemma 1), so shard-local
/// summaries merge into a global q-bounded model without changing the
/// paper's semantics — the scale-out counterpart of the parallel
/// evaluation engine. The robustness contract is the point of this class:
/// every shard owns its own checkpoint rotation, fault policy, and replay
/// log, so a single shard hitting an injected I/O fault or crash point is
/// quarantined and recovered from its own checkpoint — replaying only its
/// deferred records — while the other K−1 shards keep ingesting.
///
/// Health state machine, per shard:
///
///   kHealthy ──(crash point / checkpoint I/O failure / log overflow)──►
///   kDegraded ──(RecoverShards: restore begins)──► kRecovering
///   kRecovering ──(restore + full replay done)──► kHealthy
///   kRecovering ──(restore failed)──► kDegraded
///   kRecovering ──(deadline mid-replay)──► kRecovering  (progress kept)
///
/// Degraded and recovering shards never stall the pipeline: routed records
/// accumulate in their replay logs (bounded by `max_replay_buffer`), and
/// the merge operator skips them with an explicit flag instead of
/// blocking (`MergeResult::skipped_shards`).

/// Where a shard currently stands in the recovery lifecycle.
enum class ShardHealth {
  kHealthy = 0,
  /// Quarantined after a crash/fault; in-memory state is gone. Routed
  /// records keep accumulating in the replay log.
  kDegraded,
  /// Restore succeeded; replay of the log tail is in progress.
  kRecovering,
};

/// Returns "healthy", "degraded", or "recovering".
const char* ShardHealthToString(ShardHealth health);

/// Crash points honored by ShardedSummarizer (via
/// FaultInjector::ArmCrashAt/ConsumeCrashAt). Each site kills the shard's
/// in-memory state at a different place relative to ingest/checkpoint, so
/// a matrix test can prove recovery from every interleaving.
enum class ShardCrashSite : int {
  /// Before any of the shard's backlog is ingested this round.
  kBeforeIngest = 1,
  /// After the backlog was absorbed, before any checkpoint — the absorbed
  /// records must come back from the replay log.
  kAfterIngest = 2,
  /// After the checkpoint decision, before the save wrote anything.
  kBeforeCheckpoint = 3,
  /// After a successful save — recovery restores the brand-new checkpoint
  /// and replays nothing.
  kAfterCheckpoint = 4,
};

struct ShardedSummarizerOptions {
  /// Number of independent shards K (>= 1).
  size_t num_shards = 4;
  /// Per-shard summarizer configuration (cluster budget q, fault policy,
  /// monotonic-time enforcement). Each shard sees an order-preserving
  /// subsequence of the stream, so monotonic timestamps survive routing.
  StreamSummarizer::Options shard_options;
  /// Cluster budget of the merged global model (0 = shard_options.
  /// num_clusters, i.e. the same q as a monolithic summarizer).
  size_t merged_clusters = 0;
  /// Root directory for per-shard checkpoint rotations (`<dir>/shard-<i>`).
  /// Empty disables checkpointing: crashes then recover by replaying the
  /// full log from the beginning (which is never trimmed in that mode).
  std::string checkpoint_dir;
  /// Records per shard between automatic checkpoint saves (0 = only
  /// explicit CheckpointAll calls).
  size_t checkpoint_every = 1000;
  /// Hard cap on any one shard's replay log (records routed but not yet
  /// covered by a durable checkpoint). When a shard's log is full —
  /// typically one stuck in kDegraded while traffic keeps arriving —
  /// IngestBatch stops routing at the first record bound for it
  /// (backpressure, stop_cause = kBudget) until recovery or a checkpoint
  /// trims the log.
  size_t max_replay_buffer = 1 << 20;
  /// Retry schedule for per-shard checkpoint I/O.
  RetryPolicy retry;
  /// Test seam shared by every shard: transient I/O faults, torn writes,
  /// short reads (checkpoint paths) and ShardCrashSite crash points. Not
  /// owned; must outlive the summarizer.
  FaultInjector* io_faults = nullptr;
  /// Seed folded into the routing hash, so distinct deployments can
  /// decorrelate their partitions.
  uint64_t hash_seed = 0x9E3779B97F4A7C15ULL;
  /// Worker width for the per-shard drain (0/1 = serial; N > 1 drains up
  /// to N shards concurrently on the shared ThreadPool). Routing and
  /// merge stay deterministic at any width. Ignored (forced serial) while
  /// `io_faults` is set: the injector's arm/consume counters are not
  /// thread-safe, and fault-injection tests need deterministic fault
  /// placement anyway.
  size_t threads = 0;
};

/// Introspection snapshot of one shard.
struct ShardStatus {
  ShardHealth health = ShardHealth::kHealthy;
  /// Records routed to this shard since creation.
  uint64_t records_routed = 0;
  /// Records absorbed by the live summarizer (the shard-local cursor).
  uint64_t records_absorbed = 0;
  /// Cursor covered by the last durable checkpoint.
  uint64_t records_checkpointed = 0;
  /// Routed records not yet absorbed — the replay backlog.
  uint64_t replay_remaining = 0;
  /// Quarantine events (crash points fired, checkpoint I/O failures past
  /// retries, log overflows).
  uint64_t crashes = 0;
  /// Completed degraded → recovering → healthy transitions.
  uint64_t recoveries = 0;
  /// The failure that caused the most recent quarantine (OK if none).
  Status last_error;
};

/// Outcome of one sharded IngestBatch: how many leading records were
/// routed and why the batch stopped early (if it did).
struct ShardedIngestResult {
  size_t consumed = 0;
  StopCause stop_cause = StopCause::kCompleted;
  /// Shards currently not healthy after this call.
  size_t shards_degraded = 0;
};

/// Outcome of a merge: the global summary plus which shards it covers.
/// `skipped_shards` lists shards excluded because they were degraded,
/// recovering, or cut off by the deadline — the merge degrades
/// (skip-with-flag) instead of stalling on a stuck shard.
struct MergeResult {
  std::vector<MicroCluster> clusters;
  size_t shards_merged = 0;
  std::vector<size_t> skipped_shards;
  StopCause stop_cause = StopCause::kCompleted;

  bool complete() const { return skipped_shards.empty(); }
};

class ShardedSummarizer {
 public:
  static Result<ShardedSummarizer> Create(
      size_t num_dims, const ShardedSummarizerOptions& options);

  /// Routes a prefix of `records` to their shards and drains every healthy
  /// shard's backlog under the context's deadline/budget. Stops routing at
  /// the first record whose target shard's replay log is full
  /// (stop_cause = kBudget); a deadline/budget hit mid-drain leaves the
  /// tail buffered in the shard logs (stop_cause = kDeadline/kBudget) to
  /// be drained by the next call. A cancellation — or any context
  /// violation before the first record is routed — returns an error; a
  /// kStrict validation rejection propagates as-is with shard context
  /// (use kRepair/kQuarantine for hands-off pipelines). One shard's crash
  /// or checkpoint failure quarantines that shard only; the call still
  /// succeeds and `shards_degraded` reports the damage.
  Result<ShardedIngestResult> IngestBatch(std::span<const RecordView> records,
                                          ExecContext& ctx);

  /// Restores every degraded shard from its own checkpoint rotation and
  /// replays its deferred records, under the context's deadline. Healthy
  /// shards are untouched. A deadline hit mid-replay leaves the shard
  /// kRecovering with its progress kept; call again to continue. Returns
  /// the first restore error encountered (other shards still get their
  /// recovery attempt).
  Status RecoverShards(ExecContext& ctx);

  /// Forces a checkpoint save on every healthy shard (also trims their
  /// replay logs). Returns the first failure; the failing shard is
  /// quarantined exactly as a periodic-save failure would.
  Status CheckpointAll();

  /// Merges the live shard summaries into one global q-bounded summary
  /// under the monolithic maintenance rules (see microcluster/merge.h).
  /// Unhealthy shards — and, past the deadline, not-yet-visited shards —
  /// are skipped with their indices flagged in the result rather than
  /// stalling the merge.
  MergeResult MergedSummary(ExecContext& ctx) const;

  /// Convenience: MergedSummary + McDensityModel::Build. Fails if every
  /// shard was skipped or the merged summary is empty.
  Result<McDensityModel> MergedSnapshot(
      ExecContext& ctx, const DensityEvalOptions& density = {}) const;

  /// Stable routing: which shard `record` belongs to (FNV-1a over the
  /// value bit patterns and the timestamp, folded with hash_seed).
  size_t ShardFor(const RecordView& record) const;

  /// Simulates the death of shard `i`'s process: in-memory summarizer
  /// state is discarded and the shard is quarantined. Everything after
  /// its last durable checkpoint is recovered via the replay log.
  void KillShard(size_t i);

  size_t num_shards() const { return shards_.size(); }
  size_t num_dims() const { return num_dims_; }
  const ShardedSummarizerOptions& options() const { return options_; }

  /// Snapshot of shard `i`'s lifecycle counters.
  ShardStatus shard_status(size_t i) const;

  /// Live summarizer of shard `i` (nullptr while crashed/degraded).
  const StreamSummarizer* shard_summarizer(size_t i) const;

  /// Shards currently not healthy.
  size_t num_degraded() const;

  /// Total replay backlog across shards (the `shard.replay_remaining`
  /// gauge mirrors this).
  uint64_t total_replay_remaining() const;

  /// Records routed across all shards since creation.
  uint64_t records_routed() const;

  /// Element-wise sum of every live shard's IngestStats. A degraded
  /// shard's in-memory counters died with it and contribute nothing until
  /// recovery restores them (rolled back to its last checkpoint, then
  /// advanced by replay).
  IngestStats AggregateIngestStats() const;

 private:
  struct Shard {
    std::optional<StreamSummarizer> summarizer;
    std::optional<CheckpointManager> checkpoints;
    ShardHealth health = ShardHealth::kHealthy;
    /// Owned copies of records at stream positions
    /// [log_base, log_base + log.size()) — everything routed since the
    /// last durable checkpoint.
    /// (StreamRecord, from fault_injector.h, is the owned-record type; the
    /// borrowed RecordView cannot outlive the IngestBatch call.)
    std::deque<StreamRecord> log;
    uint64_t log_base = 0;
    uint64_t routed = 0;
    uint64_t absorbed = 0;
    uint64_t checkpointed = 0;
    uint64_t crashes = 0;
    uint64_t recoveries = 0;
    Status last_error;
  };

  ShardedSummarizer(size_t num_dims, ShardedSummarizerOptions options)
      : num_dims_(num_dims), options_(std::move(options)) {}

  /// True when an armed crash at `site` fired (and the injector is set).
  bool CrashPointFired(ShardCrashSite site);

  /// Quarantines `shard`: drops in-memory state, records the cause.
  void Quarantine(Shard& shard, Status cause);

  /// Ingests shard backlog [absorbed, routed) into its live summarizer.
  /// Returns the summarizer's batch status; advances `absorbed`.
  Result<BatchIngestResult> DrainShard(Shard& shard, ExecContext& ctx);

  /// Periodic checkpoint; `force` saves regardless of checkpoint_every.
  /// On success trims the replay log; on failure quarantines the shard.
  Status MaybeCheckpoint(Shard& shard, bool force);

  /// Refreshes the shard.* gauges after a state change.
  void PublishGauges() const;

  size_t num_dims_;
  ShardedSummarizerOptions options_;
  std::vector<Shard> shards_;
};

}  // namespace udm

#endif  // UDM_STREAM_SHARDED_SUMMARIZER_H_
