#include "stream/drift.h"

#include <cmath>

#include "common/math_util.h"

namespace udm {

Result<DriftResult> MeasureDrift(const McDensityModel& a,
                                 const McDensityModel& b) {
  if (a.num_dims() != b.num_dims()) {
    return Status::InvalidArgument("MeasureDrift: dimension mismatch");
  }
  if (a.num_clusters() == 0 || b.num_clusters() == 0) {
    return Status::InvalidArgument("MeasureDrift: empty model");
  }
  const size_t d = a.num_dims();
  std::vector<size_t> all_dims(d);
  for (size_t j = 0; j < d; ++j) all_dims[j] = j;

  DriftResult result;
  KahanSum score;
  size_t probes = 0;
  const auto add_probes = [&](const McDensityModel& source) {
    for (size_t c = 0; c < source.num_clusters(); ++c) {
      const std::span<const double> x{source.centroids().data() + c * d, d};
      const double log_a = a.LogEvaluateSubspace(x, all_dims);
      const double log_b = b.LogEvaluateSubspace(x, all_dims);
      score.Add(std::fabs(log_a - log_b));
      if (log_a > log_b) {
        ++result.probes_favoring_a;
      } else if (log_b > log_a) {
        ++result.probes_favoring_b;
      }
      ++probes;
    }
  };
  add_probes(a);
  add_probes(b);
  result.score = score.Total() / static_cast<double>(probes);
  return result;
}

}  // namespace udm
