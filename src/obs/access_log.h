#ifndef UDM_OBS_ACCESS_LOG_H_
#define UDM_OBS_ACCESS_LOG_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"

namespace udm::obs {

/// One completed request, as the serving loop saw it. Field order in the
/// emitted JSON matches declaration order here; tools/check_run_report
/// validates the schema.
struct AccessLogEntry {
  std::string trace_id;
  std::string op;        // "eval", "classify", ...
  std::string model;
  std::string outcome;   // "ok", "deadline", "shed", "cancelled", "error"
  bool degraded = false;
  double queue_seconds = 0.0;
  double total_seconds = 0.0;
  uint64_t points = 0;
  uint64_t kernel_evals = 0;
  uint64_t request_bytes = 0;
  uint64_t response_bytes = 0;
  /// Seconds since the Unix epoch at completion (wall clock — the one
  /// timestamp meant for correlating with the world outside the process).
  double unix_time = 0.0;
};

/// Options for the structured access log.
struct AccessLogOptions {
  std::string path;
  /// Rotate when the current file exceeds this many bytes (0 = never).
  uint64_t rotate_bytes = 64ull << 20;
  /// Rotated generations kept: path.1 (newest) .. path.N (oldest).
  size_t max_rotations = 2;
};

/// Append-only JSON-lines access log with size-based rotation. Append()
/// serializes, writes, and flushes one line under a mutex — the log is
/// written once per completed request, far off any hot loop, so contention
/// is irrelevant next to the request it describes. A default-constructed
/// (unopened) log swallows appends, so callers do not guard call sites.
class AccessLog {
 public:
  AccessLog() = default;
  ~AccessLog();

  AccessLog(const AccessLog&) = delete;
  AccessLog& operator=(const AccessLog&) = delete;

  /// Opens (creating or appending to) options.path.
  Status Open(const AccessLogOptions& options);

  /// Writes one JSON line; rotates first if the file is over the cap.
  /// Errors are counted (access_log.write_errors) rather than propagated —
  /// telemetry must never fail the request it describes.
  void Append(const AccessLogEntry& entry);

  void Close();

  bool is_open() const;

  /// The serialized form of one entry (exposed for the schema checker's
  /// tests and udm_cli tooling).
  static std::string ToJson(const AccessLogEntry& entry);

 private:
  void RotateLocked();

  mutable std::mutex mu_;
  AccessLogOptions options_;
  std::FILE* file_ = nullptr;
  uint64_t bytes_written_ = 0;
};

}  // namespace udm::obs

#endif  // UDM_OBS_ACCESS_LOG_H_
