#include "obs/access_log.h"

#include <sys/stat.h>

#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"

namespace udm::obs {

AccessLog::~AccessLog() { Close(); }

Status AccessLog::Open(const AccessLogOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    return Status::InvalidArgument("AccessLog: already open");
  }
  if (options.path.empty()) {
    return Status::InvalidArgument("AccessLog: empty path");
  }
  std::FILE* file = std::fopen(options.path.c_str(), "ab");
  if (file == nullptr) {
    return Status::IoError("AccessLog: cannot open " + options.path);
  }
  options_ = options;
  file_ = file;
  struct stat st;
  bytes_written_ =
      (stat(options.path.c_str(), &st) == 0) ? static_cast<uint64_t>(st.st_size)
                                             : 0;
  return Status::OK();
}

std::string AccessLog::ToJson(const AccessLogEntry& entry) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("trace_id").String(entry.trace_id);
  writer.Key("op").String(entry.op);
  writer.Key("model").String(entry.model);
  writer.Key("outcome").String(entry.outcome);
  writer.Key("degraded").Bool(entry.degraded);
  writer.Key("queue_seconds").Number(entry.queue_seconds);
  writer.Key("total_seconds").Number(entry.total_seconds);
  writer.Key("points").Number(entry.points);
  writer.Key("kernel_evals").Number(entry.kernel_evals);
  writer.Key("request_bytes").Number(entry.request_bytes);
  writer.Key("response_bytes").Number(entry.response_bytes);
  writer.Key("unix_time").Number(entry.unix_time);
  writer.EndObject();
  return writer.TakeString();
}

void AccessLog::Append(const AccessLogEntry& entry) {
  const std::string line = ToJson(entry);
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ == nullptr) return;
  if (options_.rotate_bytes > 0 &&
      bytes_written_ + line.size() + 1 > options_.rotate_bytes &&
      bytes_written_ > 0) {
    RotateLocked();
  }
  if (file_ == nullptr) return;  // rotation failed and closed the log
  const size_t written = std::fwrite(line.data(), 1, line.size(), file_);
  const bool ok = written == line.size() && std::fputc('\n', file_) != EOF &&
                  std::fflush(file_) == 0;
  if (!ok) {
    static Counter& errors =
        MetricsRegistry::Global().GetCounter("access_log.write_errors");
    errors.Increment();
    return;
  }
  bytes_written_ += line.size() + 1;
  static Counter& lines =
      MetricsRegistry::Global().GetCounter("access_log.lines");
  lines.Increment();
}

void AccessLog::RotateLocked() {
  std::fclose(file_);
  file_ = nullptr;
  // Shift generations oldest-first: path.(N-1) -> path.N, ..., path -> path.1.
  for (size_t i = options_.max_rotations; i >= 1; --i) {
    const std::string from =
        i == 1 ? options_.path : options_.path + "." + std::to_string(i - 1);
    const std::string to = options_.path + "." + std::to_string(i);
    std::rename(from.c_str(), to.c_str());  // ENOENT for missing gens is fine
  }
  std::FILE* file = std::fopen(options_.path.c_str(), "wb");
  if (file == nullptr) {
    static Counter& errors =
        MetricsRegistry::Global().GetCounter("access_log.write_errors");
    errors.Increment();
    return;
  }
  file_ = file;
  bytes_written_ = 0;
  static Counter& rotations =
      MetricsRegistry::Global().GetCounter("access_log.rotations");
  rotations.Increment();
}

void AccessLog::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    std::fclose(file_);
    file_ = nullptr;
  }
}

bool AccessLog::is_open() const {
  std::lock_guard<std::mutex> lock(mu_);
  return file_ != nullptr;
}

}  // namespace udm::obs
