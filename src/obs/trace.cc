#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/tracez.h"

namespace udm::obs {

namespace {

/// Backstop against unbounded growth if tracing is left on around a huge
/// loop; drops are counted and surfaced rather than silently truncated.
constexpr size_t kMaxTraceEvents = 1 << 20;

/// Test override for the cap (0 = use kMaxTraceEvents).
std::atomic<size_t> g_cap_override{0};

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint32_t> g_next_tid{1};

std::mutex& TraceMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<TraceEvent>& TraceBuffer() {
  static std::vector<TraceEvent>* buffer = new std::vector<TraceEvent>();
  return *buffer;
}

/// The trace clock's zero point, reset by EnableTracing().
std::chrono::steady_clock::time_point& TraceEpoch() {
  static std::chrono::steady_clock::time_point* epoch =
      new std::chrono::steady_clock::time_point(std::chrono::steady_clock::now());
  return *epoch;
}

uint32_t ThisThreadId() {
  thread_local const uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int& ThisThreadDepth() {
  thread_local int depth = 0;
  return depth;
}

/// Thread-local request binding installed by TraceIdScope: the id string
/// plus the resolved tracez capture handle.
struct ThreadTraceBinding {
  std::string id;
  Tracez::Handle capture;
};

ThreadTraceBinding& ThisThreadBinding() {
  thread_local ThreadTraceBinding binding;
  return binding;
}

double MicrosSince(std::chrono::steady_clock::time_point epoch,
                   std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - epoch).count();
}

}  // namespace

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void EnableTracing() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  TraceBuffer().clear();
  g_dropped.store(0, std::memory_order_relaxed);
  TraceEpoch() = std::chrono::steady_clock::now();
  g_enabled.store(true, std::memory_order_release);
}

void DisableTracing() { g_enabled.store(false, std::memory_order_release); }

std::vector<TraceEvent> TraceEvents() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  return TraceBuffer();
}

size_t TraceEventCount() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  return TraceBuffer().size();
}

uint64_t TraceEventsDropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string TraceJson() {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents").BeginArray();
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    for (const TraceEvent& event : TraceBuffer()) {
      writer.BeginObject();
      writer.Key("name").String(event.name);
      writer.Key("cat").String("udm");
      writer.Key("ph").String("X");
      writer.Key("ts").Number(event.ts_us);
      writer.Key("dur").Number(event.dur_us);
      writer.Key("pid").Number(uint64_t{1});
      writer.Key("tid").Number(static_cast<uint64_t>(event.tid));
      if (!event.args.empty() || !event.trace_id.empty()) {
        writer.Key("args").BeginObject();
        if (!event.trace_id.empty()) {
          writer.Key("trace_id").String(event.trace_id);
        }
        for (const auto& [key, value] : event.args) {
          writer.Key(key).String(value);
        }
        writer.EndObject();
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("displayTimeUnit").String("ms");
  // A truncated export says so: consumers can trust a zero here to mean
  // "complete" instead of guessing from the event count.
  writer.Key("metadata").BeginObject();
  writer.Key("events_dropped").Number(TraceEventsDropped());
  writer.EndObject();
  writer.EndObject();
  return writer.TakeString();
}

Status WriteTrace(const std::string& path) {
  const std::string json = TraceJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("WriteTrace: cannot open " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("WriteTrace: short write to " + path);
  }
  return Status::OK();
}

void ResetTraceForTest() {
  g_enabled.store(false, std::memory_order_release);
  g_cap_override.store(0, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(TraceMutex());
  TraceBuffer().clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

void SetTraceEventCapForTest(size_t cap) {
  g_cap_override.store(cap, std::memory_order_relaxed);
}

const std::string& CurrentTraceId() { return ThisThreadBinding().id; }

TraceIdScope::TraceIdScope(std::string_view trace_id) {
  ThreadTraceBinding& binding = ThisThreadBinding();
  previous_id_ = std::move(binding.id);
  previous_slot_ = binding.capture.slot;
  previous_gen_ = binding.capture.gen;
  binding.id = std::string(trace_id);
  binding.capture = Tracez::Global().FindActive(binding.id);
}

TraceIdScope::~TraceIdScope() {
  ThreadTraceBinding& binding = ThisThreadBinding();
  binding.id = std::move(previous_id_);
  binding.capture = Tracez::Handle{previous_slot_, previous_gen_};
}

TraceSpan::TraceSpan(const char* name) : name_(name) {
  global_ = TracingEnabled();
  active_ = global_ || ThisThreadBinding().capture.valid();
  if (!active_) return;
  depth_ = ThisThreadDepth()++;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  --ThisThreadDepth();
  const ThreadTraceBinding& binding = ThisThreadBinding();
  if (binding.capture.valid()) {
    Tracez::Global().Append(binding.capture, name_, start_, end,
                            ThisThreadId(), depth_);
  }
  if (!global_) return;
  TraceEvent event;
  event.name = name_;
  event.tid = ThisThreadId();
  event.depth = depth_;
  event.trace_id = binding.id;
  event.args = std::move(args_);
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    const auto epoch = TraceEpoch();
    event.ts_us = MicrosSince(epoch, start_);
    event.dur_us = MicrosSince(start_, end);
    const size_t cap_override = g_cap_override.load(std::memory_order_relaxed);
    const size_t cap = cap_override != 0 ? cap_override : kMaxTraceEvents;
    if (TraceBuffer().size() >= cap) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      // Surfaced as a metric too, so a truncated trace shows up in any
      // metrics scrape, not only when someone exports the trace itself.
      static Counter& dropped =
          MetricsRegistry::Global().GetCounter("trace.events_dropped");
      dropped.Increment();
      return;
    }
    TraceBuffer().push_back(std::move(event));
  }
}

void TraceSpan::AddAttribute(std::string_view key, std::string_view value) {
  if (!active_) return;
  args_.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::AddAttribute(std::string_view key, double value) {
  if (!active_) return;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  args_.emplace_back(std::string(key), std::string(buffer));
}

void TraceSpan::AddAttribute(std::string_view key, uint64_t value) {
  if (!active_) return;
  args_.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace udm::obs
