#include "obs/trace.h"

#include <atomic>
#include <cstdio>
#include <mutex>

#include "obs/json.h"

namespace udm::obs {

namespace {

/// Backstop against unbounded growth if tracing is left on around a huge
/// loop; drops are counted and surfaced rather than silently truncated.
constexpr size_t kMaxTraceEvents = 1 << 20;

std::atomic<bool> g_enabled{false};
std::atomic<uint64_t> g_dropped{0};
std::atomic<uint32_t> g_next_tid{1};

std::mutex& TraceMutex() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<TraceEvent>& TraceBuffer() {
  static std::vector<TraceEvent>* buffer = new std::vector<TraceEvent>();
  return *buffer;
}

/// The trace clock's zero point, reset by EnableTracing().
std::chrono::steady_clock::time_point& TraceEpoch() {
  static std::chrono::steady_clock::time_point* epoch =
      new std::chrono::steady_clock::time_point(std::chrono::steady_clock::now());
  return *epoch;
}

uint32_t ThisThreadId() {
  thread_local const uint32_t tid =
      g_next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

int& ThisThreadDepth() {
  thread_local int depth = 0;
  return depth;
}

double MicrosSince(std::chrono::steady_clock::time_point epoch,
                   std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double, std::micro>(t - epoch).count();
}

}  // namespace

bool TracingEnabled() { return g_enabled.load(std::memory_order_relaxed); }

void EnableTracing() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  TraceBuffer().clear();
  g_dropped.store(0, std::memory_order_relaxed);
  TraceEpoch() = std::chrono::steady_clock::now();
  g_enabled.store(true, std::memory_order_release);
}

void DisableTracing() { g_enabled.store(false, std::memory_order_release); }

std::vector<TraceEvent> TraceEvents() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  return TraceBuffer();
}

size_t TraceEventCount() {
  std::lock_guard<std::mutex> lock(TraceMutex());
  return TraceBuffer().size();
}

uint64_t TraceEventsDropped() {
  return g_dropped.load(std::memory_order_relaxed);
}

std::string TraceJson() {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("traceEvents").BeginArray();
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    for (const TraceEvent& event : TraceBuffer()) {
      writer.BeginObject();
      writer.Key("name").String(event.name);
      writer.Key("cat").String("udm");
      writer.Key("ph").String("X");
      writer.Key("ts").Number(event.ts_us);
      writer.Key("dur").Number(event.dur_us);
      writer.Key("pid").Number(uint64_t{1});
      writer.Key("tid").Number(static_cast<uint64_t>(event.tid));
      if (!event.args.empty()) {
        writer.Key("args").BeginObject();
        for (const auto& [key, value] : event.args) {
          writer.Key(key).String(value);
        }
        writer.EndObject();
      }
      writer.EndObject();
    }
  }
  writer.EndArray();
  writer.Key("displayTimeUnit").String("ms");
  writer.EndObject();
  return writer.TakeString();
}

Status WriteTrace(const std::string& path) {
  const std::string json = TraceJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("WriteTrace: cannot open " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("WriteTrace: short write to " + path);
  }
  return Status::OK();
}

void ResetTraceForTest() {
  g_enabled.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> lock(TraceMutex());
  TraceBuffer().clear();
  g_dropped.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name)
    : name_(name), active_(TracingEnabled()) {
  if (!active_) return;
  depth_ = ThisThreadDepth()++;
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const auto end = std::chrono::steady_clock::now();
  --ThisThreadDepth();
  TraceEvent event;
  event.name = name_;
  event.tid = ThisThreadId();
  event.depth = depth_;
  event.args = std::move(args_);
  {
    std::lock_guard<std::mutex> lock(TraceMutex());
    const auto epoch = TraceEpoch();
    event.ts_us = MicrosSince(epoch, start_);
    event.dur_us = MicrosSince(start_, end);
    if (TraceBuffer().size() >= kMaxTraceEvents) {
      g_dropped.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    TraceBuffer().push_back(std::move(event));
  }
}

void TraceSpan::AddAttribute(std::string_view key, std::string_view value) {
  if (!active_) return;
  args_.emplace_back(std::string(key), std::string(value));
}

void TraceSpan::AddAttribute(std::string_view key, double value) {
  if (!active_) return;
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  args_.emplace_back(std::string(key), std::string(buffer));
}

void TraceSpan::AddAttribute(std::string_view key, uint64_t value) {
  if (!active_) return;
  args_.emplace_back(std::string(key), std::to_string(value));
}

}  // namespace udm::obs
