#include "obs/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace udm::obs {

namespace {

/// Formats a double with enough digits to round-trip, as valid JSON.
std::string FormatDouble(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

}  // namespace

std::string JsonEscape(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!has_sibling_.empty() && has_sibling_.back()) out_ += ',';
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += '{';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  has_sibling_.pop_back();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += '[';
  has_sibling_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  has_sibling_.pop_back();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  if (!has_sibling_.empty() && has_sibling_.back()) out_ += ',';
  out_ += '"';
  out_ += JsonEscape(key);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(std::string_view value) {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += FormatDouble(value);
  return *this;
}

JsonWriter& JsonWriter::Number(uint64_t value) {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Number(int64_t value) {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  if (!has_sibling_.empty()) has_sibling_.back() = true;
  out_ += "null";
  return *this;
}

namespace {

constexpr int kMaxParseDepth = 64;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<JsonValue> ParseDocument() {
    UDM_ASSIGN_OR_RETURN(JsonValue value, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("JsonValue::Parse: trailing characters at offset " +
                                     std::to_string(pos_));
    }
    return value;
  }

 private:
  void SkipWhitespace() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  Status Error(const std::string& what) const {
    return Status::InvalidArgument("JsonValue::Parse: " + what + " at offset " +
                                   std::to_string(pos_));
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  Result<JsonValue> ParseValue(int depth);

  Result<std::string> ParseString() {
    if (!Consume('"')) return Error("expected string");
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) break;
        const char esc = text_[pos_++];
        switch (esc) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return Error("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') {
                code |= static_cast<unsigned>(h - '0');
              } else if (h >= 'a' && h <= 'f') {
                code |= static_cast<unsigned>(h - 'a' + 10);
              } else if (h >= 'A' && h <= 'F') {
                code |= static_cast<unsigned>(h - 'A' + 10);
              } else {
                return Error("bad \\u escape digit");
              }
            }
            // ASCII only; anything wider is replaced (the writer never
            // emits \u beyond control characters).
            out += code < 0x80 ? static_cast<char>(code) : '?';
            break;
          }
          default:
            return Error("unknown escape");
        }
      } else {
        out += c;
      }
    }
    return Error("unterminated string");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

Result<JsonValue> Parser::ParseValue(int depth) {
  if (depth > kMaxParseDepth) return Error("nesting too deep");
  SkipWhitespace();
  if (pos_ >= text_.size()) return Error("unexpected end of input");

  JsonValue value;
  const char c = text_[pos_];
  if (c == '{') {
    ++pos_;
    std::vector<std::pair<std::string, JsonValue>> members;
    SkipWhitespace();
    if (!Consume('}')) {
      while (true) {
        SkipWhitespace();
        UDM_ASSIGN_OR_RETURN(std::string key, ParseString());
        SkipWhitespace();
        if (!Consume(':')) return Error("expected ':'");
        UDM_ASSIGN_OR_RETURN(JsonValue member, ParseValue(depth + 1));
        members.emplace_back(std::move(key), std::move(member));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume('}')) break;
        return Error("expected ',' or '}'");
      }
    }
    return JsonValue::MakeObject(std::move(members));
  }
  if (c == '[') {
    ++pos_;
    std::vector<JsonValue> items;
    SkipWhitespace();
    if (!Consume(']')) {
      while (true) {
        UDM_ASSIGN_OR_RETURN(JsonValue item, ParseValue(depth + 1));
        items.push_back(std::move(item));
        SkipWhitespace();
        if (Consume(',')) continue;
        if (Consume(']')) break;
        return Error("expected ',' or ']'");
      }
    }
    return JsonValue::MakeArray(std::move(items));
  }
  if (c == '"') {
    UDM_ASSIGN_OR_RETURN(std::string text, ParseString());
    return JsonValue::MakeString(std::move(text));
  }
  if (ConsumeLiteral("null")) return JsonValue();
  if (ConsumeLiteral("true")) return JsonValue::MakeBool(true);
  if (ConsumeLiteral("false")) return JsonValue::MakeBool(false);

  // Number: delegate to strtod over the longest plausible span.
  const size_t start = pos_;
  while (pos_ < text_.size() &&
         (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
          text_[pos_] == '-' || text_[pos_] == '+' || text_[pos_] == '.' ||
          text_[pos_] == 'e' || text_[pos_] == 'E')) {
    ++pos_;
  }
  if (pos_ == start) return Error("unexpected character");
  const std::string token(text_.substr(start, pos_ - start));
  char* end = nullptr;
  const double number = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return Error("bad number");
  return JsonValue::MakeNumber(number);
}

}  // namespace

JsonValue JsonValue::MakeBool(bool value) {
  JsonValue v;
  v.type_ = Type::kBool;
  v.bool_ = value;
  return v;
}

JsonValue JsonValue::MakeNumber(double value) {
  JsonValue v;
  v.type_ = Type::kNumber;
  v.number_ = value;
  return v;
}

JsonValue JsonValue::MakeString(std::string value) {
  JsonValue v;
  v.type_ = Type::kString;
  v.string_ = std::move(value);
  return v;
}

JsonValue JsonValue::MakeArray(std::vector<JsonValue> items) {
  JsonValue v;
  v.type_ = Type::kArray;
  v.items_ = std::move(items);
  return v;
}

JsonValue JsonValue::MakeObject(
    std::vector<std::pair<std::string, JsonValue>> members) {
  JsonValue v;
  v.type_ = Type::kObject;
  v.members_ = std::move(members);
  return v;
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

Result<JsonValue> JsonValue::Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace udm::obs
