#include "obs/metrics.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace udm::obs {

namespace {

/// Relaxed atomic add for doubles (no fetch_add for floating point before
/// C++20 on all toolchains; a CAS loop is portable and uncontended here).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

std::atomic<int64_t> g_test_epoch_offset{0};

size_t WindowEpochCount(double window_seconds) {
  if (!(window_seconds > 0.0)) return 0;
  const double epochs = std::ceil(window_seconds / kWindowEpochSeconds);
  return std::min(static_cast<size_t>(epochs), kWindowEpochs);
}

}  // namespace

int64_t WindowEpochNow() {
  static const auto start = std::chrono::steady_clock::now();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  return static_cast<int64_t>(elapsed / kWindowEpochSeconds) +
         g_test_epoch_offset.load(std::memory_order_relaxed);
}

void AdvanceWindowClockForTest(double seconds) {
  g_test_epoch_offset.fetch_add(
      static_cast<int64_t>(seconds / kWindowEpochSeconds),
      std::memory_order_relaxed);
}

void ResetWindowClockForTest() {
  g_test_epoch_offset.store(0, std::memory_order_relaxed);
}

namespace internal_window {

void WindowCellAdd(WindowCell& cell, int64_t e, uint64_t n) {
  int64_t seen = cell.epoch.load(std::memory_order_acquire);
  if (seen != e) {
    if (cell.epoch.compare_exchange_strong(seen, e,
                                           std::memory_order_acq_rel)) {
      // We won the rotation: the cell now belongs to epoch e and starts
      // from zero. A concurrent add between the CAS and this store may be
      // wiped — the documented bounded loss.
      cell.value.store(0, std::memory_order_relaxed);
    }
    // CAS failure means another writer rotated first (seen is now e) or
    // the clock moved again; either way fall through and record.
  }
  cell.value.fetch_add(n, std::memory_order_relaxed);
}

uint64_t WindowCellSum(const WindowCell* cells, size_t n, int64_t now,
                       size_t window_epochs) {
  uint64_t total = 0;
  const int64_t oldest = now - static_cast<int64_t>(window_epochs) + 1;
  for (size_t i = 0; i < n; ++i) {
    const int64_t e = cells[i].epoch.load(std::memory_order_acquire);
    if (e >= oldest && e <= now) {
      total += cells[i].value.load(std::memory_order_relaxed);
    }
  }
  return total;
}

}  // namespace internal_window

void Counter::Increment(uint64_t n) {
  value_.fetch_add(n, std::memory_order_relaxed);
  const int64_t e = WindowEpochNow();
  internal_window::WindowCellAdd(
      window_[static_cast<size_t>(e) % kWindowEpochs], e, n);
}

uint64_t Counter::WindowedValue(double window_seconds) const {
  const size_t epochs = WindowEpochCount(window_seconds);
  if (epochs == 0) return 0;
  return internal_window::WindowCellSum(window_, kWindowEpochs,
                                        WindowEpochNow(), epochs);
}

double Counter::RatePerSecond(double window_seconds) const {
  const size_t epochs = WindowEpochCount(window_seconds);
  if (epochs == 0) return 0.0;
  const double span = static_cast<double>(epochs) * kWindowEpochSeconds;
  return static_cast<double>(WindowedValue(window_seconds)) / span;
}

void Counter::Reset() {
  value_.store(0, std::memory_order_relaxed);
  for (auto& cell : window_) {
    cell.epoch.store(-1, std::memory_order_relaxed);
    cell.value.store(0, std::memory_order_relaxed);
  }
}

Histogram::Histogram(const HistogramOptions& options) {
  const size_t n = std::max<size_t>(options.num_buckets, 1);
  const double first = options.first_bound > 0.0 ? options.first_bound : 1e-6;
  const double growth = options.growth > 1.0 ? options.growth : 2.0;
  bounds_.reserve(n);
  double bound = first;
  for (size_t i = 0; i < n; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(n + 1);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& epoch : window_) {
    epoch.buckets = std::make_unique<std::atomic<uint64_t>[]>(n + 1);
  }
}

void Histogram::Record(double value) {
  if (!std::isfinite(value)) {
    non_finite_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First bucket index whose inclusive upper bound covers the value; the
  // overflow bucket (index bounds_.size()) takes everything larger.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);

  // Windowed view: same bucket, current epoch's ring slot. Rotation
  // follows the WindowCellAdd contract — CAS winner zeroes, concurrent
  // recordings racing the zeroing are bounded benign loss.
  const int64_t e = WindowEpochNow();
  WindowEpoch& slot = window_[static_cast<size_t>(e) % kWindowEpochs];
  int64_t seen = slot.epoch.load(std::memory_order_acquire);
  if (seen != e) {
    if (slot.epoch.compare_exchange_strong(seen, e,
                                           std::memory_order_acq_rel)) {
      for (size_t i = 0; i <= bounds_.size(); ++i) {
        slot.buckets[i].store(0, std::memory_order_relaxed);
      }
      slot.count.store(0, std::memory_order_relaxed);
    }
  }
  slot.buckets[index].fetch_add(1, std::memory_order_relaxed);
  slot.count.fetch_add(1, std::memory_order_relaxed);

  // Publish the count last (release): a reader that observes count >= n
  // via Count()'s acquire load also sees the bucket/sum/min/max updates of
  // those n recordings, so a nonzero count never pairs with an empty
  // min/max or a bucket total behind the count.
  count_.fetch_add(1, std::memory_order_release);
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the order statistic the quantile asks for.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside the covering bucket, then clamp to what was
    // actually observed so tiny samples do not report a bucket edge no
    // value ever reached.
    if (i == bounds_.size()) return Max();
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    const double estimate = lower + (upper - lower) * fraction;
    return std::clamp(estimate, Min(), Max());
  }
  return Max();
}

double Histogram::QuantileFromBuckets(const std::vector<uint64_t>& merged,
                                      uint64_t total, double q) const {
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < merged.size(); ++i) {
    const uint64_t in_bucket = merged[i];
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // The windowed view has no per-window min/max to clamp to; the bucket
    // edges themselves bound the estimate.
    if (i == bounds_.size()) return bounds_.back();
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    return lower + (upper - lower) * fraction;
  }
  return bounds_.back();
}

WindowedHistogramView Histogram::WindowedView(double window_seconds) const {
  WindowedHistogramView view;
  const size_t epochs = WindowEpochCount(window_seconds);
  if (epochs == 0) return view;
  const int64_t now = WindowEpochNow();
  const int64_t oldest = now - static_cast<int64_t>(epochs) + 1;
  std::vector<uint64_t> merged(bounds_.size() + 1, 0);
  for (const WindowEpoch& slot : window_) {
    const int64_t e = slot.epoch.load(std::memory_order_acquire);
    if (e < oldest || e > now) continue;
    view.count += slot.count.load(std::memory_order_relaxed);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      merged[i] += slot.buckets[i].load(std::memory_order_relaxed);
    }
  }
  if (view.count == 0) return view;
  // Approximate the windowed sum from bucket midpoints (per-epoch sums are
  // not tracked; the windowed sum only feeds dashboards, not invariants).
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    if (merged[i] == 0) continue;
    const double upper = i < bounds_.size() ? bounds_[i] : bounds_.back();
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    view.sum += static_cast<double>(merged[i]) * 0.5 * (lower + upper);
  }
  view.p50 = QuantileFromBuckets(merged, view.count, 0.50);
  view.p95 = QuantileFromBuckets(merged, view.count, 0.95);
  view.p99 = QuantileFromBuckets(merged, view.count, 0.99);
  return view;
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  non_finite_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  for (auto& slot : window_) {
    slot.epoch.store(-1, std::memory_order_relaxed);
    slot.count.store(0, std::memory_order_relaxed);
    for (size_t i = 0; i <= bounds_.size(); ++i) {
      slot.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

MetricsRegistry::MetricsRegistry() {
  // The logging rate-limiter lives in udm_common, below obs in the
  // dependency order, so its drop count is pulled in by callback instead
  // of pushed (ISSUE: "logging drop-counts feed a metric").
  callbacks_["log.rate_limited.suppressed"] = []() {
    return internal::TotalRateLimitSuppressed();
  };
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(options)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::RegisterCallback(std::string name,
                                       std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[std::move(name)] = std::move(fn);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot(
    double window_seconds) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              callbacks_.size());
  const bool windowed = window_seconds > 0.0;
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.counter = counter->Value();
    if (windowed) {
      snap.window_seconds = window_seconds;
      snap.window_count = counter->WindowedValue(window_seconds);
      snap.window_rate = counter->RatePerSecond(window_seconds);
    }
    out.push_back(std::move(snap));
  }
  for (const auto& [name, fn] : callbacks_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.counter = fn ? fn() : 0;
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kGauge;
    snap.gauge = gauge->Value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kHistogram;
    snap.count = hist->Count();
    snap.sum = hist->Sum();
    snap.min = hist->Min();
    snap.max = hist->Max();
    snap.p50 = hist->Quantile(0.50);
    snap.p95 = hist->Quantile(0.95);
    snap.p99 = hist->Quantile(0.99);
    for (size_t i = 0; i <= hist->num_buckets(); ++i) {
      const uint64_t in_bucket = hist->BucketCount(i);
      if (in_bucket == 0) continue;
      const double bound = i < hist->num_buckets()
                               ? hist->BucketUpperBound(i)
                               : std::numeric_limits<double>::infinity();
      snap.buckets.emplace_back(bound, in_bucket);
    }
    if (windowed) {
      const WindowedHistogramView view = hist->WindowedView(window_seconds);
      snap.window_seconds = window_seconds;
      snap.window_count = view.count;
      const size_t epochs = WindowEpochCount(window_seconds);
      const double span = static_cast<double>(epochs) * kWindowEpochSeconds;
      snap.window_rate =
          span > 0.0 ? static_cast<double>(view.count) / span : 0.0;
      snap.window_p50 = view.p50;
      snap.window_p95 = view.p95;
      snap.window_p99 = view.p99;
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::WriteJson(JsonWriter& writer,
                                double window_seconds) const {
  writer.BeginArray();
  for (const MetricSnapshot& snap : Snapshot(window_seconds)) {
    writer.BeginObject();
    writer.Key("name").String(snap.name);
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        writer.Key("type").String("counter");
        writer.Key("value").Number(snap.counter);
        break;
      case MetricSnapshot::Kind::kGauge:
        writer.Key("type").String("gauge");
        writer.Key("value").Number(snap.gauge);
        break;
      case MetricSnapshot::Kind::kHistogram:
        writer.Key("type").String("histogram");
        writer.Key("count").Number(snap.count);
        writer.Key("sum").Number(snap.sum);
        writer.Key("min").Number(snap.min);
        writer.Key("max").Number(snap.max);
        writer.Key("p50").Number(snap.p50);
        writer.Key("p95").Number(snap.p95);
        writer.Key("p99").Number(snap.p99);
        writer.Key("buckets").BeginArray();
        for (const auto& [bound, in_bucket] : snap.buckets) {
          writer.BeginObject();
          if (std::isfinite(bound)) {
            writer.Key("le").Number(bound);
          } else {
            writer.Key("le").String("inf");
          }
          writer.Key("count").Number(in_bucket);
          writer.EndObject();
        }
        writer.EndArray();
        break;
    }
    if (snap.window_seconds > 0.0) {
      writer.Key("window").BeginObject();
      writer.Key("seconds").Number(snap.window_seconds);
      writer.Key("count").Number(snap.window_count);
      writer.Key("rate_per_sec").Number(snap.window_rate);
      if (snap.kind == MetricSnapshot::Kind::kHistogram) {
        writer.Key("p50").Number(snap.window_p50);
        writer.Key("p95").Number(snap.window_p95);
        writer.Key("p99").Number(snap.window_p99);
      }
      writer.EndObject();
    }
    writer.EndObject();
  }
  writer.EndArray();
}

std::string MetricsRegistry::SnapshotJson(double window_seconds) const {
  JsonWriter writer;
  WriteJson(writer, window_seconds);
  return writer.TakeString();
}

namespace {

std::string PrometheusName(const std::string& name) {
  std::string out = "udm_";
  out.reserve(name.size() + 4);
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendNumber(std::string& out, double v) {
  JsonWriter w;
  w.Number(v);
  out += w.TakeString();
}

}  // namespace

std::string PrometheusText(const std::vector<MetricSnapshot>& snapshots) {
  std::string out;
  for (const MetricSnapshot& snap : snapshots) {
    const std::string name = PrometheusName(snap.name);
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(snap.counter) + "\n";
        if (snap.window_seconds > 0.0) {
          out += name + "_window_rate{window=\"" +
                 std::to_string(static_cast<int64_t>(snap.window_seconds)) +
                 "\"} ";
          AppendNumber(out, snap.window_rate);
          out += "\n";
        }
        break;
      case MetricSnapshot::Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " ";
        AppendNumber(out, snap.gauge);
        out += "\n";
        break;
      case MetricSnapshot::Kind::kHistogram: {
        out += "# TYPE " + name + " histogram\n";
        uint64_t cumulative = 0;
        for (const auto& [bound, in_bucket] : snap.buckets) {
          cumulative += in_bucket;
          out += name + "_bucket{le=\"";
          if (std::isfinite(bound)) {
            AppendNumber(out, bound);
          } else {
            out += "+Inf";
          }
          out += "\"} " + std::to_string(cumulative) + "\n";
        }
        // Prometheus requires a terminal +Inf bucket equal to _count.
        if (snap.buckets.empty() || std::isfinite(snap.buckets.back().first)) {
          out += name + "_bucket{le=\"+Inf\"} " + std::to_string(snap.count) +
                 "\n";
        }
        out += name + "_sum ";
        AppendNumber(out, snap.sum);
        out += "\n";
        out += name + "_count " + std::to_string(snap.count) + "\n";
        if (snap.window_seconds > 0.0) {
          const std::string window =
              std::to_string(static_cast<int64_t>(snap.window_seconds));
          const std::pair<const char*, double> qs[] = {
              {"0.5", snap.window_p50},
              {"0.95", snap.window_p95},
              {"0.99", snap.window_p99}};
          for (const auto& [q, v] : qs) {
            out += name + "_window{quantile=\"" + q + "\",window=\"" +
                   window + "\"} ";
            AppendNumber(out, v);
            out += "\n";
          }
          out += name + "_window_count{window=\"" + window + "\"} " +
                 std::to_string(snap.window_count) + "\n";
        }
        break;
      }
    }
  }
  return out;
}

std::string MetricsRegistry::TextExposition(double window_seconds) const {
  return PrometheusText(Snapshot(window_seconds));
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace udm::obs
