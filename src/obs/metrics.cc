#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.h"

namespace udm::obs {

namespace {

/// Relaxed atomic add for doubles (no fetch_add for floating point before
/// C++20 on all toolchains; a CAS loop is portable and uncontended here).
void AtomicAdd(std::atomic<double>& target, double delta) {
  double current = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(current, current + delta,
                                       std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current && !target.compare_exchange_weak(
                                current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(const HistogramOptions& options) {
  const size_t n = std::max<size_t>(options.num_buckets, 1);
  const double first = options.first_bound > 0.0 ? options.first_bound : 1e-6;
  const double growth = options.growth > 1.0 ? options.growth : 2.0;
  bounds_.reserve(n);
  double bound = first;
  for (size_t i = 0; i < n; ++i) {
    bounds_.push_back(bound);
    bound *= growth;
  }
  buckets_ = std::make_unique<std::atomic<uint64_t>[]>(n + 1);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

void Histogram::Record(double value) {
  if (!std::isfinite(value)) {
    non_finite_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // First bucket index whose inclusive upper bound covers the value; the
  // overflow bucket (index bounds_.size()) takes everything larger.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const size_t index = static_cast<size_t>(it - bounds_.begin());
  buckets_[index].fetch_add(1, std::memory_order_relaxed);
  AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
  // Publish the count last (release): a reader that observes count >= n
  // via Count()'s acquire load also sees the bucket/sum/min/max updates of
  // those n recordings, so a nonzero count never pairs with an empty
  // min/max or a bucket total behind the count.
  count_.fetch_add(1, std::memory_order_release);
}

double Histogram::Min() const {
  const double v = min_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Max() const {
  const double v = max_.load(std::memory_order_relaxed);
  return std::isfinite(v) ? v : 0.0;
}

double Histogram::Quantile(double q) const {
  const uint64_t total = Count();
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // 1-based rank of the order statistic the quantile asks for.
  const uint64_t rank = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(total))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    const uint64_t in_bucket = buckets_[i].load(std::memory_order_relaxed);
    if (in_bucket == 0) continue;
    if (cumulative + in_bucket < rank) {
      cumulative += in_bucket;
      continue;
    }
    // Interpolate inside the covering bucket, then clamp to what was
    // actually observed so tiny samples do not report a bucket edge no
    // value ever reached.
    if (i == bounds_.size()) return Max();
    const double upper = bounds_[i];
    const double lower = i == 0 ? 0.0 : bounds_[i - 1];
    const double fraction = static_cast<double>(rank - cumulative) /
                            static_cast<double>(in_bucket);
    const double estimate = lower + (upper - lower) * fraction;
    return std::clamp(estimate, Min(), Max());
  }
  return Max();
}

void Histogram::Reset() {
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  non_finite_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(),
             std::memory_order_relaxed);
}

MetricsRegistry::MetricsRegistry() {
  // The logging rate-limiter lives in udm_common, below obs in the
  // dependency order, so its drop count is pulled in by callback instead
  // of pushed (ISSUE: "logging drop-counts feed a metric").
  callbacks_["log.rate_limited.suppressed"] = []() {
    return internal::TotalRateLimitSuppressed();
  };
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::unique_ptr<Counter>(new Counter()))
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge()))
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name,
                                         const HistogramOptions& options) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(new Histogram(options)))
             .first;
  }
  return *it->second;
}

void MetricsRegistry::RegisterCallback(std::string name,
                                       std::function<uint64_t()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  callbacks_[std::move(name)] = std::move(fn);
}

std::vector<MetricSnapshot> MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<MetricSnapshot> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size() +
              callbacks_.size());
  for (const auto& [name, counter] : counters_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.counter = counter->Value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, fn] : callbacks_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kCounter;
    snap.counter = fn ? fn() : 0;
    out.push_back(std::move(snap));
  }
  for (const auto& [name, gauge] : gauges_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kGauge;
    snap.gauge = gauge->Value();
    out.push_back(std::move(snap));
  }
  for (const auto& [name, hist] : histograms_) {
    MetricSnapshot snap;
    snap.name = name;
    snap.kind = MetricSnapshot::Kind::kHistogram;
    snap.count = hist->Count();
    snap.sum = hist->Sum();
    snap.min = hist->Min();
    snap.max = hist->Max();
    snap.p50 = hist->Quantile(0.50);
    snap.p95 = hist->Quantile(0.95);
    snap.p99 = hist->Quantile(0.99);
    for (size_t i = 0; i <= hist->num_buckets(); ++i) {
      const uint64_t in_bucket = hist->BucketCount(i);
      if (in_bucket == 0) continue;
      const double bound = i < hist->num_buckets()
                               ? hist->BucketUpperBound(i)
                               : std::numeric_limits<double>::infinity();
      snap.buckets.emplace_back(bound, in_bucket);
    }
    out.push_back(std::move(snap));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSnapshot& a, const MetricSnapshot& b) {
              return a.name < b.name;
            });
  return out;
}

void MetricsRegistry::WriteJson(JsonWriter& writer) const {
  writer.BeginArray();
  for (const MetricSnapshot& snap : Snapshot()) {
    writer.BeginObject();
    writer.Key("name").String(snap.name);
    switch (snap.kind) {
      case MetricSnapshot::Kind::kCounter:
        writer.Key("type").String("counter");
        writer.Key("value").Number(snap.counter);
        break;
      case MetricSnapshot::Kind::kGauge:
        writer.Key("type").String("gauge");
        writer.Key("value").Number(snap.gauge);
        break;
      case MetricSnapshot::Kind::kHistogram:
        writer.Key("type").String("histogram");
        writer.Key("count").Number(snap.count);
        writer.Key("sum").Number(snap.sum);
        writer.Key("min").Number(snap.min);
        writer.Key("max").Number(snap.max);
        writer.Key("p50").Number(snap.p50);
        writer.Key("p95").Number(snap.p95);
        writer.Key("p99").Number(snap.p99);
        writer.Key("buckets").BeginArray();
        for (const auto& [bound, in_bucket] : snap.buckets) {
          writer.BeginObject();
          if (std::isfinite(bound)) {
            writer.Key("le").Number(bound);
          } else {
            writer.Key("le").String("inf");
          }
          writer.Key("count").Number(in_bucket);
          writer.EndObject();
        }
        writer.EndArray();
        break;
    }
    writer.EndObject();
  }
  writer.EndArray();
}

std::string MetricsRegistry::SnapshotJson() const {
  JsonWriter writer;
  WriteJson(writer);
  return writer.TakeString();
}

void MetricsRegistry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter->Reset();
  for (auto& [name, gauge] : gauges_) gauge->Reset();
  for (auto& [name, hist] : histograms_) hist->Reset();
}

}  // namespace udm::obs
