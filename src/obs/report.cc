#include "obs/report.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "obs/metrics.h"

namespace udm::obs {

namespace {

/// True when `cell` parses fully as a JSON-compatible number, so table
/// cells like "0.125" can be emitted unquoted.
bool LooksNumeric(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double value = std::strtod(cell.c_str(), &end);
  (void)value;
  if (end != cell.c_str() + cell.size()) return false;
  // strtod accepts "inf"/"nan", which JSON numbers cannot express.
  for (char c : cell) {
    if (std::isalpha(static_cast<unsigned char>(c)) && c != 'e' && c != 'E') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string GitDescribe() {
#ifdef UDM_GIT_DESCRIBE
  return UDM_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

RunReport::RunReport(std::string tool)
    : tool_(std::move(tool)),
      created_unix_(std::chrono::duration_cast<std::chrono::seconds>(
                        std::chrono::system_clock::now().time_since_epoch())
                        .count()),
      start_wall_(std::chrono::steady_clock::now()),
      start_cpu_(Stopwatch::ProcessCpuSeconds()) {}

void RunReport::SetConfig(std::string_view key, std::string_view value) {
  ConfigEntry entry;
  entry.key = std::string(key);
  entry.string_value = std::string(value);
  config_.push_back(std::move(entry));
}

void RunReport::SetConfig(std::string_view key, double value) {
  ConfigEntry entry;
  entry.key = std::string(key);
  entry.number_value = value;
  entry.is_number = true;
  config_.push_back(std::move(entry));
}

void RunReport::SetConfig(std::string_view key, uint64_t value) {
  SetConfig(key, static_cast<double>(value));
}

void RunReport::SetConfig(std::string_view key, int value) {
  SetConfig(key, static_cast<double>(value));
}

void RunReport::AddCheck(std::string_view name, bool passed,
                         std::string_view detail) {
  ReportCheck check;
  check.name = std::string(name);
  check.passed = passed;
  check.detail = std::string(detail);
  checks_.push_back(std::move(check));
}

void RunReport::AddTable(ReportTable table) {
  tables_.push_back(std::move(table));
}

bool RunReport::AllChecksPassed() const {
  for (const ReportCheck& check : checks_) {
    if (!check.passed) return false;
  }
  return true;
}

std::string RunReport::ToJson() const {
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start_wall_)
          .count();
  const double cpu_seconds = Stopwatch::ProcessCpuSeconds() - start_cpu_;

  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema_version").Number(uint64_t{1});
  writer.Key("tool").String(tool_);
  writer.Key("git").String(GitDescribe());
  writer.Key("created_unix").Number(created_unix_);
  writer.Key("wall_seconds").Number(wall_seconds);
  writer.Key("cpu_seconds").Number(cpu_seconds);

  writer.Key("config").BeginObject();
  for (const ConfigEntry& entry : config_) {
    if (entry.is_number) {
      writer.Key(entry.key).Number(entry.number_value);
    } else {
      writer.Key(entry.key).String(entry.string_value);
    }
  }
  writer.EndObject();

  writer.Key("checks").BeginArray();
  for (const ReportCheck& check : checks_) {
    writer.BeginObject();
    writer.Key("name").String(check.name);
    writer.Key("passed").Bool(check.passed);
    if (!check.detail.empty()) writer.Key("detail").String(check.detail);
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("tables").BeginArray();
  for (const ReportTable& table : tables_) {
    writer.BeginObject();
    writer.Key("title").String(table.title);
    writer.Key("columns").BeginArray();
    for (const std::string& column : table.columns) writer.String(column);
    writer.EndArray();
    writer.Key("rows").BeginArray();
    for (const auto& row : table.rows) {
      writer.BeginArray();
      for (const std::string& cell : row) {
        if (LooksNumeric(cell)) {
          writer.Number(std::strtod(cell.c_str(), nullptr));
        } else {
          writer.String(cell);
        }
      }
      writer.EndArray();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();

  writer.Key("metrics");
  MetricsRegistry::Global().WriteJson(writer);

  writer.EndObject();
  return writer.TakeString();
}

Status RunReport::Write(const std::string& path) const {
  const std::string json = ToJson();
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("RunReport::Write: cannot open " + path);
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), file);
  const int close_rc = std::fclose(file);
  if (written != json.size() || close_rc != 0) {
    return Status::IoError("RunReport::Write: short write to " + path);
  }
  return Status::OK();
}

}  // namespace udm::obs
