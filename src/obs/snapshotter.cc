#include "obs/snapshotter.h"

#include <chrono>
#include <cstdio>

#include "obs/json.h"
#include "obs/metrics.h"

namespace udm::obs {

Snapshotter::~Snapshotter() { Stop(); }

std::string Snapshotter::SnapshotDocument(double window_seconds) {
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("schema").String("udm_metrics_snapshot_v1");
  writer.Key("unix_time")
      .Number(std::chrono::duration<double>(
                  std::chrono::system_clock::now().time_since_epoch())
                  .count());
  writer.Key("window_seconds").Number(window_seconds);
  writer.Key("metrics");
  MetricsRegistry::Global().WriteJson(writer, window_seconds);
  writer.EndObject();
  return writer.TakeString();
}

Status Snapshotter::WriteOnce() const {
  const std::string doc = SnapshotDocument(options_.window_seconds);
  const std::string tmp = options_.path + ".tmp";
  std::FILE* file = std::fopen(tmp.c_str(), "wb");
  if (file == nullptr) {
    return Status::IoError("Snapshotter: cannot open " + tmp);
  }
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  const int close_rc = std::fclose(file);
  if (written != doc.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("Snapshotter: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), options_.path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IoError("Snapshotter: rename to " + options_.path +
                           " failed");
  }
  static Counter& writes =
      MetricsRegistry::Global().GetCounter("snapshot.writes");
  writes.Increment();
  return Status::OK();
}

Status Snapshotter::Start(const SnapshotterOptions& options) {
  std::unique_lock<std::mutex> lock(mu_);
  if (running_) return Status::InvalidArgument("Snapshotter: already running");
  if (options.path.empty()) {
    return Status::InvalidArgument("Snapshotter: empty path");
  }
  if (!(options.interval_seconds > 0.0)) {
    return Status::InvalidArgument("Snapshotter: interval must be positive");
  }
  options_ = options;
  // First write happens synchronously so an unwritable path fails Start()
  // instead of dying silently on a background thread.
  UDM_RETURN_IF_ERROR(WriteOnce());
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::OK();
}

void Snapshotter::Loop() {
  std::unique_lock<std::mutex> lock(mu_);
  const auto interval = std::chrono::duration<double>(options_.interval_seconds);
  while (!stop_) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) break;
    lock.unlock();
    const Status st = WriteOnce();
    if (!st.ok()) {
      static Counter& errors =
          MetricsRegistry::Global().GetCounter("snapshot.write_errors");
      errors.Increment();
    }
    lock.lock();
  }
}

void Snapshotter::Stop() {
  std::thread to_join;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
    to_join = std::move(thread_);
  }
  cv_.notify_all();
  if (to_join.joinable()) to_join.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    running_ = false;
  }
  // Final snapshot: capture shutdown-time state (drain counters, the last
  // window) for forensics.
  (void)WriteOnce();
}

bool Snapshotter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

}  // namespace udm::obs
