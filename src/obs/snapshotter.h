#ifndef UDM_OBS_SNAPSHOTTER_H_
#define UDM_OBS_SNAPSHOTTER_H_

#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"

namespace udm::obs {

/// Options for the background metrics snapshotter.
struct SnapshotterOptions {
  std::string path;
  /// Interval between snapshots.
  double interval_seconds = 5.0;
  /// Trailing window the snapshot's windowed fields cover.
  double window_seconds = 60.0;
};

/// Background thread that writes the windowed MetricsRegistry snapshot to
/// disk on an interval — the crash-forensics feed: if the process dies,
/// the last interval's qps and quantiles are on disk. Writes are atomic
/// (temp + rename), so a reader never sees a torn document. Stop() (or
/// destruction) writes one final snapshot so shutdown state is captured.
class Snapshotter {
 public:
  Snapshotter() = default;
  ~Snapshotter();

  Snapshotter(const Snapshotter&) = delete;
  Snapshotter& operator=(const Snapshotter&) = delete;

  /// Validates options, writes the first snapshot synchronously (so a
  /// bad path fails fast), and starts the thread.
  Status Start(const SnapshotterOptions& options);

  /// Stops the thread and writes a final snapshot. Idempotent.
  void Stop();

  bool running() const;

  /// The document written each interval:
  /// `{"schema":"udm_metrics_snapshot_v1","unix_time":...,
  ///   "window_seconds":...,"metrics":[...]}` (metrics as in
  /// MetricsRegistry::WriteJson). Exposed for the schema checker's tests.
  static std::string SnapshotDocument(double window_seconds);

 private:
  Status WriteOnce() const;
  void Loop();

  SnapshotterOptions options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool running_ = false;
  std::thread thread_;
};

}  // namespace udm::obs

#endif  // UDM_OBS_SNAPSHOTTER_H_
