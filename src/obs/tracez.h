#ifndef UDM_OBS_TRACEZ_H_
#define UDM_OBS_TRACEZ_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace udm::obs {

/// Mints a process-unique request id: 16 lowercase hex chars from a
/// splitmix64 of a process-seeded counter. Cheap, collision-free within a
/// process, and unguessable enough to never collide across restarts in
/// practice.
std::string MintTraceId();

/// One completed span inside a tracez capture, microseconds relative to
/// the capture's Begin().
struct TracezSpan {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  int depth = 0;
};

/// One fully-captured request: identity, spans, wall duration, and the
/// final annotations stamped at End() (queue wait, degrade tier, outcome).
struct TracezCapture {
  std::string trace_id;
  std::string op;
  std::vector<TracezSpan> spans;
  uint64_t spans_dropped = 0;
  double duration_us = 0.0;
  std::vector<std::pair<std::string, std::string>> annotations;
  /// Completion order, for the "recent" horizon.
  uint64_t seq = 0;
};

/// In-memory sample of the slowest recent requests ("tracez"). Every
/// accepted request Begin()s a capture (bounded active set — extras are
/// skipped and counted); spans recorded under that request's TraceIdScope
/// are appended from any thread; End() retires the capture and retains it
/// if it ranks among the slowest completions inside the recent horizon.
///
/// All methods take one mutex. Span append happens per chunk / per
/// request-level span — tens of events per request, not per kernel eval —
/// so contention is negligible next to the work the spans measure.
class Tracez {
 public:
  /// Copyable reference to an active capture slot. `gen == 0` is the
  /// invalid handle (capture skipped); all operations on it are no-ops.
  struct Handle {
    uint32_t slot = 0;
    uint64_t gen = 0;
    bool valid() const { return gen != 0; }
  };

  /// Bounded concurrent captures; Begin() beyond this returns an invalid
  /// handle and increments tracez.capture_skipped.
  static constexpr size_t kMaxActive = 64;
  /// Span cap per capture; excess spans increment the capture's
  /// spans_dropped instead of growing without bound.
  static constexpr size_t kMaxSpansPerCapture = 128;
  /// How many slowest captures are retained for the tracez verb.
  static constexpr size_t kRetained = 16;
  /// Retained captures older than this many completions are evicted even
  /// if slow — "slowest recent", not "slowest ever".
  static constexpr uint64_t kRecentHorizon = 4096;

  static Tracez& Global();

  /// Starts capturing a request. The returned handle is what TraceIdScope
  /// installs thread-locally so spans on any participating thread reach
  /// this capture.
  Handle Begin(std::string_view trace_id, std::string_view op);

  /// Looks up the active capture for `trace_id` (workers joining a request
  /// mid-flight resolve the handle from the id they carry on ExecContext).
  Handle FindActive(std::string_view trace_id) const;

  /// Appends one completed span. `start`/`end` are absolute steady-clock
  /// points; the capture stores them relative to its Begin().
  void Append(Handle handle, std::string_view name,
              std::chrono::steady_clock::time_point start,
              std::chrono::steady_clock::time_point end, uint32_t tid,
              int depth);

  /// Retires the capture: stamps duration + annotations, retains it if it
  /// is among the slowest within the recent horizon. Stale handles (slot
  /// re-begun, double End) are no-ops.
  void End(Handle handle,
           std::vector<std::pair<std::string, std::string>> annotations);

  /// Retained captures, slowest first.
  std::vector<TracezCapture> Snapshot() const;

  /// `{"slowest":[{trace_id,op,duration_us,spans_dropped,annotations,
  /// spans:[{name,ts_us,dur_us,tid,depth}]}]}` — the tracez verb payload.
  std::string Json() const;

  void ResetForTest();

 private:
  Tracez() = default;

  struct Slot {
    uint64_t gen = 0;  // generation of the capture occupying this slot
    bool active = false;
    TracezCapture capture;
    std::chrono::steady_clock::time_point begin;
  };

  mutable std::mutex mu_;
  Slot slots_[kMaxActive];
  std::vector<TracezCapture> retained_;  // sorted slowest-first, <= kRetained
  uint64_t next_gen_ = 1;
  uint64_t next_seq_ = 1;
};

}  // namespace udm::obs

#endif  // UDM_OBS_TRACEZ_H_
