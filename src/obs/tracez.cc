#include "obs/tracez.h"

#include <algorithm>
#include <atomic>

#include "obs/json.h"
#include "obs/metrics.h"

namespace udm::obs {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

double MicrosBetween(std::chrono::steady_clock::time_point a,
                     std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::micro>(b - a).count();
}

}  // namespace

std::string MintTraceId() {
  static std::atomic<uint64_t> counter{static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count())};
  const uint64_t value =
      SplitMix64(counter.fetch_add(1, std::memory_order_relaxed));
  char out[17];
  static const char* hex = "0123456789abcdef";
  for (int i = 0; i < 16; ++i) {
    out[i] = hex[(value >> (60 - 4 * i)) & 0xf];
  }
  out[16] = '\0';
  return std::string(out, 16);
}

Tracez& Tracez::Global() {
  static Tracez* tracez = new Tracez();
  return *tracez;
}

Tracez::Handle Tracez::Begin(std::string_view trace_id, std::string_view op) {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < kMaxActive; ++i) {
    Slot& slot = slots_[i];
    if (slot.active) continue;
    slot.active = true;
    slot.gen = next_gen_++;
    slot.capture = TracezCapture{};
    slot.capture.trace_id = std::string(trace_id);
    slot.capture.op = std::string(op);
    slot.begin = std::chrono::steady_clock::now();
    return Handle{static_cast<uint32_t>(i), slot.gen};
  }
  static Counter& skipped =
      MetricsRegistry::Global().GetCounter("tracez.capture_skipped");
  skipped.Increment();
  return Handle{};
}

Tracez::Handle Tracez::FindActive(std::string_view trace_id) const {
  if (trace_id.empty()) return Handle{};
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < kMaxActive; ++i) {
    const Slot& slot = slots_[i];
    if (slot.active && slot.capture.trace_id == trace_id) {
      return Handle{static_cast<uint32_t>(i), slot.gen};
    }
  }
  return Handle{};
}

void Tracez::Append(Handle handle, std::string_view name,
                    std::chrono::steady_clock::time_point start,
                    std::chrono::steady_clock::time_point end, uint32_t tid,
                    int depth) {
  if (!handle.valid() || handle.slot >= kMaxActive) return;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[handle.slot];
  if (!slot.active || slot.gen != handle.gen) return;  // stale handle
  if (slot.capture.spans.size() >= kMaxSpansPerCapture) {
    ++slot.capture.spans_dropped;
    return;
  }
  TracezSpan span;
  span.name = std::string(name);
  span.ts_us = MicrosBetween(slot.begin, start);
  span.dur_us = MicrosBetween(start, end);
  span.tid = tid;
  span.depth = depth;
  slot.capture.spans.push_back(std::move(span));
}

void Tracez::End(
    Handle handle,
    std::vector<std::pair<std::string, std::string>> annotations) {
  if (!handle.valid() || handle.slot >= kMaxActive) return;
  std::lock_guard<std::mutex> lock(mu_);
  Slot& slot = slots_[handle.slot];
  if (!slot.active || slot.gen != handle.gen) return;
  slot.active = false;
  TracezCapture capture = std::move(slot.capture);
  slot.capture = TracezCapture{};
  capture.duration_us =
      MicrosBetween(slot.begin, std::chrono::steady_clock::now());
  capture.annotations = std::move(annotations);
  capture.seq = next_seq_++;

  // Evict retained captures that fell out of the recent horizon, then
  // insert the new one if it ranks among the slowest survivors.
  const uint64_t oldest =
      next_seq_ > kRecentHorizon ? next_seq_ - kRecentHorizon : 0;
  retained_.erase(std::remove_if(retained_.begin(), retained_.end(),
                                 [oldest](const TracezCapture& c) {
                                   return c.seq < oldest;
                                 }),
                  retained_.end());
  retained_.push_back(std::move(capture));
  std::sort(retained_.begin(), retained_.end(),
            [](const TracezCapture& a, const TracezCapture& b) {
              return a.duration_us > b.duration_us;
            });
  if (retained_.size() > kRetained) retained_.resize(kRetained);
}

std::vector<TracezCapture> Tracez::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retained_;
}

std::string Tracez::Json() const {
  const std::vector<TracezCapture> captures = Snapshot();
  JsonWriter writer;
  writer.BeginObject();
  writer.Key("slowest").BeginArray();
  for (const TracezCapture& capture : captures) {
    writer.BeginObject();
    writer.Key("trace_id").String(capture.trace_id);
    writer.Key("op").String(capture.op);
    writer.Key("duration_us").Number(capture.duration_us);
    writer.Key("spans_dropped").Number(capture.spans_dropped);
    if (!capture.annotations.empty()) {
      writer.Key("annotations").BeginObject();
      for (const auto& [key, value] : capture.annotations) {
        writer.Key(key).String(value);
      }
      writer.EndObject();
    }
    writer.Key("spans").BeginArray();
    for (const TracezSpan& span : capture.spans) {
      writer.BeginObject();
      writer.Key("name").String(span.name);
      writer.Key("ts_us").Number(span.ts_us);
      writer.Key("dur_us").Number(span.dur_us);
      writer.Key("tid").Number(static_cast<uint64_t>(span.tid));
      writer.Key("depth").Number(static_cast<int64_t>(span.depth));
      writer.EndObject();
    }
    writer.EndArray();
    writer.EndObject();
  }
  writer.EndArray();
  writer.EndObject();
  return writer.TakeString();
}

void Tracez::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Slot& slot : slots_) {
    slot.active = false;
    slot.gen = 0;
    slot.capture = TracezCapture{};
  }
  retained_.clear();
  next_gen_ = 1;
  next_seq_ = 1;
}

}  // namespace udm::obs
