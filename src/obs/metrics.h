#ifndef UDM_OBS_METRICS_H_
#define UDM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace udm::obs {

/// ---------------------------------------------------------------------------
/// Sliding-window clock
/// ---------------------------------------------------------------------------
/// Windowed metrics slice time into 1-second epochs and keep a ring of
/// kWindowEpochs per-epoch cells next to the cumulative state. A windowed
/// read merges the cells whose epoch falls inside the trailing window, so
/// "p99 over the last 60 s" costs one pass over the ring — no locks, no
/// background rotation thread. The ring bounds how far back a window can
/// reach; queries are clamped to it.

/// Ring capacity in epochs (= seconds). Window queries longer than this
/// are clamped.
inline constexpr size_t kWindowEpochs = 64;
/// Epoch length in seconds (the window resolution).
inline constexpr double kWindowEpochSeconds = 1.0;

/// Current epoch index: whole seconds since process start plus the test
/// offset. Monotonic (steady clock).
int64_t WindowEpochNow();

/// Advances the window clock by `seconds` (tests drive epoch rotation
/// without sleeping). Affects every windowed metric in the process.
void AdvanceWindowClockForTest(double seconds);

/// Clears the test offset.
void ResetWindowClockForTest();

namespace internal_window {

/// One epoch cell of a windowed counter. `epoch` tags which epoch the
/// value belongs to; a cell whose tag is outside the queried window is
/// ignored by readers and lazily re-tagged + zeroed by the next writer
/// that lands on it.
struct WindowCell {
  std::atomic<int64_t> epoch{-1};
  std::atomic<uint64_t> value{0};
};

/// Lazily rotates `cell` to epoch `e` and adds `n`. The rotation CAS has
/// a benign race: a recording that lands between a winner's re-tag and
/// its zeroing can be lost (or attributed to the new epoch). The loss is
/// bounded by the number of concurrently-recording threads once per
/// epoch rotation — noise well below the bucket resolution of any
/// windowed quantile, and free of locks on the record path.
void WindowCellAdd(WindowCell& cell, int64_t e, uint64_t n);

/// Sum of the cells whose epoch lies in (now - window_epochs, now].
uint64_t WindowCellSum(const WindowCell* cells, size_t n, int64_t now,
                       size_t window_epochs);

}  // namespace internal_window

/// Monotonic event counter. Increment is a relaxed atomic add on the
/// cumulative value plus one ring-cell add for the windowed view — cheap
/// enough for per-chunk accounting on the kernel-evaluation hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1);
  /// Cumulative (since process start) value — monotonic.
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }
  /// Increments observed in the trailing `window_seconds` (clamped to the
  /// ring capacity). Includes the current partial epoch.
  uint64_t WindowedValue(double window_seconds) const;
  /// WindowedValue / window_seconds — the live rate (e.g. qps).
  double RatePerSecond(double window_seconds) const;

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset();

  std::atomic<uint64_t> value_{0};
  internal_window::WindowCell window_[kWindowEpochs];
};

/// Last-write-wins instantaneous value (e.g. current micro-cluster count).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: exponential upper bounds
/// `first_bound * growth^i` for i in [0, num_buckets), plus an implicit
/// overflow bucket. The defaults cover latencies from 1 µs to ~9 minutes
/// at 2x resolution.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  size_t num_buckets = 40;
};

/// Windowed view of a histogram: merged per-epoch buckets over the
/// trailing window. `count == 0` means the window saw no samples — the
/// quantiles are 0 and must be rendered as "empty", never as stale
/// cumulative values.
struct WindowedHistogramView {
  uint64_t count = 0;
  double sum = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;

  bool empty() const { return count == 0; }
};

/// Fixed-bucket concurrent histogram. Record() is lock-free: one binary
/// search over the precomputed bounds plus a handful of relaxed atomic
/// updates (cumulative buckets and the current epoch's windowed buckets).
/// Quantiles are estimated by linear interpolation inside the covering
/// bucket; cumulative quantiles are clamped to the observed min/max.
class Histogram {
 public:
  /// Records one observation. Non-finite values are counted separately and
  /// excluded from buckets and quantiles; values above the last bound land
  /// in the overflow bucket.
  void Record(double value);

  /// Acquire load pairing with Record()'s release publication of count_:
  /// any recording whose count this read observes has its bucket, sum,
  /// min, and max updates visible too.
  uint64_t Count() const { return count_.load(std::memory_order_acquire); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  double Min() const;
  double Max() const;
  uint64_t NonFiniteCount() const {
    return non_finite_.load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile, q in [0, 1] (0 when empty). Cumulative view.
  double Quantile(double q) const;

  /// Merged per-epoch buckets over the trailing `window_seconds`
  /// (clamped to the ring). Zero-sample windows return an empty view.
  WindowedHistogramView WindowedView(double window_seconds) const;

  /// Bucket introspection: buckets [0, num_buckets()) hold values
  /// <= BucketUpperBound(i) (and > the previous bound); index
  /// num_buckets() is the overflow bucket.
  size_t num_buckets() const { return bounds_.size(); }
  double BucketUpperBound(size_t i) const { return bounds_[i]; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const HistogramOptions& options);
  void Reset();

  /// One epoch of windowed buckets: an epoch tag plus num_buckets()+1
  /// bucket counts and a sample count, lazily zeroed on rotation (same
  /// benign-race contract as internal_window::WindowCellAdd).
  struct WindowEpoch {
    std::atomic<int64_t> epoch{-1};
    std::atomic<uint64_t> count{0};
    std::unique_ptr<std::atomic<uint64_t>[]> buckets;  // bounds_.size() + 1
  };

  /// Quantile over externally-merged bucket counts (windowed reads).
  double QuantileFromBuckets(const std::vector<uint64_t>& merged,
                             uint64_t total, double q) const;

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> non_finite_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
  WindowEpoch window_[kWindowEpochs];
  /// Sum of samples in each window epoch is not tracked per-epoch (the
  /// windowed sum is approximated from bucket midpoints); see WindowedView.
};

/// Snapshot of one metric, decoupled from the live atomics.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;  // counters and callbacks
  double gauge = 0.0;
  // Histogram summary (cumulative).
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Non-empty buckets only: (inclusive upper bound, count). The overflow
  /// bucket is reported with bound +inf (serialized as the string "inf").
  std::vector<std::pair<double, uint64_t>> buckets;
  // Windowed view (counters: events + rate; histograms: quantiles).
  // window_seconds == 0 means the snapshot was taken without a window.
  double window_seconds = 0.0;
  uint64_t window_count = 0;
  double window_rate = 0.0;
  double window_p50 = 0.0;
  double window_p95 = 0.0;
  double window_p99 = 0.0;
};

/// Renders snapshots in the Prometheus text exposition format (v0.0.4):
/// cumulative counters/gauges/histograms as their native types plus the
/// windowed series as labeled gauges (`..._window{q="p99",window="60"}`).
/// Names are sanitized (non-[a-zA-Z0-9_] -> '_') and prefixed "udm_".
std::string PrometheusText(const std::vector<MetricSnapshot>& snapshots);

/// Process-wide registry of named metrics. Lookup takes a mutex and is
/// meant to happen once per call site (cache the reference in a function-
/// local static); the returned objects live for the process lifetime and
/// are updated lock-free. Names follow `subsystem.verb_or_noun[.unit]`
/// (see DESIGN.md §4d).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name,
                          const HistogramOptions& options = {});

  /// Registers an externally-owned counter read at snapshot time — the
  /// hook for subsystems below obs in the dependency order (e.g. the
  /// logging rate-limiter's drop count in udm_common).
  void RegisterCallback(std::string name, std::function<uint64_t()> fn);

  /// Consistent-enough copy of every metric, sorted by name. Individual
  /// reads are relaxed; a snapshot taken during concurrent updates may mix
  /// slightly different moments, which is fine for reporting. When
  /// `window_seconds > 0` the windowed fields are populated over that
  /// trailing window (clamped to the ring capacity).
  std::vector<MetricSnapshot> Snapshot(double window_seconds = 0.0) const;

  /// Writes Snapshot(window_seconds) as a JSON array value into `writer`.
  void WriteJson(JsonWriter& writer, double window_seconds = 0.0) const;

  /// The JSON array alone (a complete document).
  std::string SnapshotJson(double window_seconds = 0.0) const;

  /// Prometheus text exposition of Snapshot(window_seconds).
  std::string TextExposition(double window_seconds = 60.0) const;

  /// Zeroes every owned metric (objects and references stay valid).
  /// Callbacks are not owned and are left registered.
  void ResetForTest();

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::function<uint64_t()>, std::less<>> callbacks_;
};

}  // namespace udm::obs

#endif  // UDM_OBS_METRICS_H_
