#ifndef UDM_OBS_METRICS_H_
#define UDM_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace udm::obs {

/// Monotonic event counter. Increment is one relaxed atomic add, cheap
/// enough for per-chunk accounting on the kernel-evaluation hot path.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Counter() = default;
  void Reset() { value_.store(0, std::memory_order_relaxed); }

  std::atomic<uint64_t> value_{0};
};

/// Last-write-wins instantaneous value (e.g. current micro-cluster count).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  Gauge() = default;
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

  std::atomic<double> value_{0.0};
};

/// Bucket layout of a Histogram: exponential upper bounds
/// `first_bound * growth^i` for i in [0, num_buckets), plus an implicit
/// overflow bucket. The defaults cover latencies from 1 µs to ~9 minutes
/// at 2x resolution.
struct HistogramOptions {
  double first_bound = 1e-6;
  double growth = 2.0;
  size_t num_buckets = 40;
};

/// Fixed-bucket concurrent histogram. Record() is lock-free: one binary
/// search over the precomputed bounds plus a handful of relaxed atomic
/// updates. Quantiles are estimated by linear interpolation inside the
/// covering bucket and clamped to the observed min/max.
class Histogram {
 public:
  /// Records one observation. Non-finite values are counted separately and
  /// excluded from buckets and quantiles; values above the last bound land
  /// in the overflow bucket.
  void Record(double value);

  /// Acquire load pairing with Record()'s release publication of count_:
  /// any recording whose count this read observes has its bucket, sum,
  /// min, and max updates visible too.
  uint64_t Count() const { return count_.load(std::memory_order_acquire); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  /// Smallest / largest recorded value (0 when empty).
  double Min() const;
  double Max() const;
  uint64_t NonFiniteCount() const {
    return non_finite_.load(std::memory_order_relaxed);
  }

  /// Estimated q-quantile, q in [0, 1] (0 when empty).
  double Quantile(double q) const;

  /// Bucket introspection: buckets [0, num_buckets()) hold values
  /// <= BucketUpperBound(i) (and > the previous bound); index
  /// num_buckets() is the overflow bucket.
  size_t num_buckets() const { return bounds_.size(); }
  double BucketUpperBound(size_t i) const { return bounds_[i]; }
  uint64_t BucketCount(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  friend class MetricsRegistry;
  explicit Histogram(const HistogramOptions& options);
  void Reset();

  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> non_finite_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_{0.0};
  std::atomic<double> max_{0.0};
};

/// Snapshot of one metric, decoupled from the live atomics.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };

  std::string name;
  Kind kind = Kind::kCounter;
  uint64_t counter = 0;  // counters and callbacks
  double gauge = 0.0;
  // Histogram summary.
  uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  /// Non-empty buckets only: (inclusive upper bound, count). The overflow
  /// bucket is reported with bound +inf (serialized as the string "inf").
  std::vector<std::pair<double, uint64_t>> buckets;
};

/// Process-wide registry of named metrics. Lookup takes a mutex and is
/// meant to happen once per call site (cache the reference in a function-
/// local static); the returned objects live for the process lifetime and
/// are updated lock-free. Names follow `subsystem.verb_or_noun[.unit]`
/// (see DESIGN.md §4d).
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Gauge& GetGauge(std::string_view name);
  Histogram& GetHistogram(std::string_view name,
                          const HistogramOptions& options = {});

  /// Registers an externally-owned counter read at snapshot time — the
  /// hook for subsystems below obs in the dependency order (e.g. the
  /// logging rate-limiter's drop count in udm_common).
  void RegisterCallback(std::string name, std::function<uint64_t()> fn);

  /// Consistent-enough copy of every metric, sorted by name. Individual
  /// reads are relaxed; a snapshot taken during concurrent updates may mix
  /// slightly different moments, which is fine for reporting.
  std::vector<MetricSnapshot> Snapshot() const;

  /// Writes Snapshot() as a JSON array value into `writer`.
  void WriteJson(JsonWriter& writer) const;

  /// The JSON array alone (a complete document).
  std::string SnapshotJson() const;

  /// Zeroes every owned metric (objects and references stay valid).
  /// Callbacks are not owned and are left registered.
  void ResetForTest();

 private:
  MetricsRegistry();

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
  std::map<std::string, std::function<uint64_t()>, std::less<>> callbacks_;
};

}  // namespace udm::obs

#endif  // UDM_OBS_METRICS_H_
