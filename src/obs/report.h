#ifndef UDM_OBS_REPORT_H_
#define UDM_OBS_REPORT_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"
#include "obs/json.h"

namespace udm::obs {

/// What `git describe` said when the binary was configured ("unknown"
/// outside a git checkout). Stamped by CMake into the udm_obs target.
std::string GitDescribe();

/// One result table, mirroring the ASCII tables the benches print.
struct ReportTable {
  std::string title;
  std::vector<std::string> columns;
  /// Cells are pre-formatted; numeric-looking cells are emitted as JSON
  /// numbers so downstream tooling can plot them without re-parsing.
  std::vector<std::vector<std::string>> rows;
};

/// Outcome of one sanity/shape check a bench ran on its own output.
struct ReportCheck {
  std::string name;
  bool passed = false;
  std::string detail;
};

/// Machine-readable record of one tool/bench run: configuration, build
/// provenance, wall/CPU time, result tables, checks, and a full metrics
/// snapshot. Serialized as a single JSON document (schema v1, DESIGN.md
/// §4d). One RunReport per process; construct early, Write() at exit.
class RunReport {
 public:
  explicit RunReport(std::string tool);

  /// Records a configuration key (flag value, dataset size, ...).
  void SetConfig(std::string_view key, std::string_view value);
  void SetConfig(std::string_view key, double value);
  void SetConfig(std::string_view key, uint64_t value);
  void SetConfig(std::string_view key, int value);

  void AddCheck(std::string_view name, bool passed,
                std::string_view detail = "");
  void AddTable(ReportTable table);

  /// All checks so far passed (vacuously true when none were recorded).
  bool AllChecksPassed() const;

  /// Serializes the report, capturing wall/CPU time since construction and
  /// the current global metrics snapshot.
  std::string ToJson() const;
  Status Write(const std::string& path) const;

 private:
  std::string tool_;
  int64_t created_unix_ = 0;
  std::chrono::steady_clock::time_point start_wall_;
  double start_cpu_ = 0.0;
  struct ConfigEntry {
    std::string key;
    std::string string_value;
    double number_value = 0.0;
    bool is_number = false;
  };
  std::vector<ConfigEntry> config_;
  std::vector<ReportCheck> checks_;
  std::vector<ReportTable> tables_;
};

}  // namespace udm::obs

#endif  // UDM_OBS_REPORT_H_
