#ifndef UDM_OBS_JSON_H_
#define UDM_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace udm::obs {

/// Append-only JSON document builder: compact output, correct string
/// escaping, automatic comma placement. The writer trusts the caller to
/// produce a structurally valid document (matched Begin/End, one Key per
/// value inside objects); it exists so no observability code ever builds
/// JSON by string concatenation.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(std::string_view key);
  JsonWriter& String(std::string_view value);
  /// Non-finite doubles have no JSON encoding; they are emitted as null.
  JsonWriter& Number(double value);
  JsonWriter& Number(uint64_t value);
  JsonWriter& Number(int64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  const std::string& str() const { return out_; }
  std::string TakeString() { return std::move(out_); }

 private:
  /// Emits the separating comma when a sibling value precedes this one.
  void BeforeValue();

  std::string out_;
  std::vector<bool> has_sibling_;  // per open container
  bool pending_key_ = false;
};

/// Escapes `value` for inclusion inside a JSON string literal (quotes not
/// included). Exposed for the trace exporter's streaming writer.
std::string JsonEscape(std::string_view value);

/// Immutable parsed JSON value. The parser is a small recursive-descent
/// implementation (bounded depth, no exceptions) that exists so the CLI
/// `stats` subcommand and the RunReport schema checker can read the
/// documents the writer produces — it is not a general-purpose JSON
/// library (no \u surrogate pairs, numbers parsed via strtod).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  /// Parses a complete JSON document (trailing garbage is an error).
  static Result<JsonValue> Parse(std::string_view text);

  /// Value factories (the default-constructed value is null).
  static JsonValue MakeBool(bool value);
  static JsonValue MakeNumber(double value);
  static JsonValue MakeString(std::string value);
  static JsonValue MakeArray(std::vector<JsonValue> items);
  static JsonValue MakeObject(
      std::vector<std::pair<std::string, JsonValue>> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool boolean() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& items() const { return items_; }
  const std::vector<std::pair<std::string, JsonValue>>& members() const {
    return members_;
  }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

}  // namespace udm::obs

#endif  // UDM_OBS_JSON_H_
