#ifndef UDM_OBS_TRACE_H_
#define UDM_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.h"

namespace udm::obs {

/// One completed span, in microseconds relative to EnableTracing().
/// Exposed so tests can assert on nesting without re-parsing JSON.
struct TraceEvent {
  std::string name;
  double ts_us = 0.0;
  double dur_us = 0.0;
  uint32_t tid = 0;
  /// Nesting depth at span start (0 = top level on its thread).
  int depth = 0;
  /// Request the span belonged to (empty outside a TraceIdScope).
  std::string trace_id;
  std::vector<std::pair<std::string, std::string>> args;
};

/// Tracing is a process-wide switch, off by default. When off, a TraceSpan
/// costs one relaxed atomic load — cheap enough to leave spans compiled
/// into the hot paths permanently.
bool TracingEnabled();
/// Clears the buffer, restarts the trace clock, and starts collecting.
void EnableTracing();
void DisableTracing();

/// Completed spans collected so far (copy).
std::vector<TraceEvent> TraceEvents();
size_t TraceEventCount();
/// Spans dropped because the buffer cap was hit. Also surfaced as the
/// `trace.events_dropped` counter and stamped into TraceJson metadata so
/// a truncated export is self-describing.
uint64_t TraceEventsDropped();

/// Chrome trace_event JSON ("traceEvents" array of ph:"X" complete
/// events), loadable in about:tracing and Perfetto.
std::string TraceJson();
Status WriteTrace(const std::string& path);

/// Disables tracing and clears all buffered events (and restores the
/// default event cap).
void ResetTraceForTest();

/// Overrides the event-buffer cap so tests can drive the drop path without
/// recording a million spans (0 = restore the default).
void SetTraceEventCapForTest(size_t cap);

/// The trace id installed on the calling thread (empty when none).
const std::string& CurrentTraceId();

/// RAII scope stitching spans on this thread to one request. Installs the
/// trace id thread-locally and resolves the request's active tracez
/// capture (if any), so every TraceSpan inside the scope (a) carries the
/// id into the global trace buffer and (b) is appended to the request's
/// tracez capture — even with global tracing off. Workers joining a
/// request mid-flight (ParallelFor chunks, shard drains) construct one
/// from ExecContext::trace_id(). Scopes nest; the previous id/capture are
/// restored on destruction.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::string_view trace_id);
  ~TraceIdScope();

  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::string previous_id_;
  uint32_t previous_slot_ = 0;
  uint64_t previous_gen_ = 0;
};

/// RAII scope measuring one named region. Construct on the stack; the
/// span is recorded at destruction. Spans nest naturally (depth is
/// tracked per thread). Use the UDM_TRACE_SPAN macro for the common
/// no-attribute case.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Attaches a key/value shown in the trace viewer's args pane. No-op
  /// when tracing is disabled.
  void AddAttribute(std::string_view key, std::string_view value);
  void AddAttribute(std::string_view key, double value);
  void AddAttribute(std::string_view key, uint64_t value);

 private:
  const char* name_;
  bool active_;          // recording somewhere: global buffer or tracez
  bool global_ = false;  // global trace buffer specifically
  int depth_ = 0;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::pair<std::string, std::string>> args_;
};

}  // namespace udm::obs

#define UDM_OBS_CONCAT_INNER(a, b) a##b
#define UDM_OBS_CONCAT(a, b) UDM_OBS_CONCAT_INNER(a, b)

/// Scoped trace span: `UDM_TRACE_SPAN("kde.eval");`
#define UDM_TRACE_SPAN(name) \
  ::udm::obs::TraceSpan UDM_OBS_CONCAT(udm_trace_span_, __LINE__)(name)

#endif  // UDM_OBS_TRACE_H_
